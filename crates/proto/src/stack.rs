//! The cost-charging UDP/IP engine.
//!
//! Output builds real packets: headers are written into a kernel slab
//! (each contributing its own physical buffer, exactly the §2.2 "header
//! portion usually contributes one physical buffer" effect), data is
//! fragmented by the message tool without copying, and the optional UDP
//! checksum reads every data byte through the cache model.
//!
//! Input parses and verifies real headers out of the receive buffers,
//! reassembles fragments, and — the §2.3 centrepiece — when a UDP
//! checksum mismatch coincides with stale cache lines, performs the lazy
//! recovery: "the corresponding cache locations are invalidated, and the
//! message is re-evaluated before it is considered in error".

use std::collections::HashMap;

use osiris_board::descriptor::Descriptor;
use osiris_host::driver::DeliveredPdu;
use osiris_host::machine::{internet_checksum, HostMachine};
use osiris_mem::{AddressSpace, MapError, PhysAddr, PhysBuffer, VirtAddr};
use osiris_sim::obs::{Counter, Probe};
use osiris_sim::{SimDuration, SimTime, Timeline, TraceCtx};

use std::collections::HashSet;

use crate::frag::fragment_layout;
use crate::msg::Message;
use crate::wire::{IpHeader, UdpHeader, IPPROTO_UDP, IP_HEADER_BYTES, UDP_HEADER_BYTES};

/// The UDP port reserved for acknowledgements in reliable mode. Data
/// traffic must not use it.
pub const ACK_PORT: u16 = 1;

/// Stack configuration.
#[derive(Debug, Clone, Copy)]
pub struct ProtoConfig {
    /// Largest PDU handed to the driver, including the IP header (§4 uses
    /// 16 KB plus headers so data stays page-aligned).
    pub mtu: u32,
    /// Whether UDP checksums the data (off in the latency experiments).
    pub udp_checksum: bool,
    /// Opt-in reliable mode: every outgoing datagram is held for
    /// acknowledgement and retransmitted with exponential backoff until
    /// acked or [`ProtoConfig::max_retries`] is exhausted; the receiver
    /// acks each delivered datagram on [`ACK_PORT`] and suppresses (but
    /// re-acks) duplicates. The paper's stack is unreliable UDP — this
    /// exists for the loss-sweep experiments.
    pub reliable: bool,
    /// Initial retransmission timeout (doubles per retry).
    pub rto_initial: SimDuration,
    /// Backoff ceiling.
    pub rto_max: SimDuration,
    /// Retries before a datagram is abandoned (bounds every run).
    pub max_retries: u32,
}

impl ProtoConfig {
    /// The paper's configuration: 16 KB of data per fragment (page-aligned
    /// MTU), checksumming off, no reliability.
    pub fn paper_default() -> Self {
        ProtoConfig {
            mtu: 16 * 1024 + IP_HEADER_BYTES as u32,
            udp_checksum: false,
            reliable: false,
            rto_initial: SimDuration::from_ms(2),
            rto_max: SimDuration::from_ms(64),
            max_retries: 16,
        }
    }
}

/// One PDU ready for the driver.
#[derive(Debug, Clone)]
pub struct TxPacket {
    /// Header + data segments, in order.
    pub msg: Message<VirtAddr>,
    /// Causal identity of the datagram this packet fragments — every
    /// fragment of one `output` call shares it, and it matches the IP
    /// reassembly key `(src, id)` the receiver re-mints.
    pub ctx: TraceCtx,
}

/// The outcome of feeding one received PDU into the stack.
#[derive(Debug)]
pub enum RxVerdict {
    /// A fragment was absorbed; the datagram is still incomplete.
    Incomplete,
    /// A whole datagram was delivered to the application.
    Deliver {
        /// Source host (the IP header's model-level address), so the
        /// application can tell senders apart on a fan-in path.
        src: u16,
        /// Causal identity of the datagram (the sender's `TxPacket::ctx`,
        /// re-minted from the IP header when the carrier lost it).
        ctx: TraceCtx,
        /// Destination (local) port.
        dst_port: u16,
        /// The data, in receive buffers (headers stripped).
        data: Message<PhysAddr>,
        /// Every receive-buffer descriptor consumed by the datagram, for
        /// recycling once the application is done.
        descs: Vec<Descriptor>,
        /// Data length.
        len: u64,
    },
    /// The datagram was discarded.
    Drop {
        /// Why.
        reason: &'static str,
        /// Descriptors to recycle immediately.
        descs: Vec<Descriptor>,
    },
    /// Reliable mode: an acknowledgement arrived and the matching pending
    /// datagram (if any) was released.
    Ack {
        /// The acknowledged datagram id.
        acked: u32,
        /// Descriptors to recycle immediately.
        descs: Vec<Descriptor>,
    },
    /// Reliable mode: a datagram that was already delivered arrived again
    /// (its ack was lost, or a retransmission crossed the ack in flight).
    /// The caller must re-ack it — the sender is still waiting — and
    /// recycle the buffers without re-delivering to the application.
    Duplicate {
        /// Source host to re-ack.
        src: u16,
        /// The duplicate datagram's id.
        id: u32,
        /// Descriptors to recycle immediately.
        descs: Vec<Descriptor>,
    },
}

/// Stack counters — a point-in-time copy of the stack's registry
/// counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct StackStats {
    /// Datagrams delivered.
    pub delivered: u64,
    /// Datagrams dropped (bad header, bad checksum, …).
    pub dropped: u64,
    /// Checksum failures that lazy invalidation repaired (§2.3).
    pub lazy_recoveries: u64,
    /// Fragments emitted.
    pub frags_out: u64,
    /// Fragments absorbed.
    pub frags_in: u64,
    /// Reliable mode: datagrams retransmitted after an RTO expiry.
    pub retransmits: u64,
    /// Reliable mode: acknowledgements received.
    pub acks_received: u64,
    /// Reliable mode: duplicate datagrams suppressed at the receiver.
    pub dup_datagrams: u64,
    /// Duplicate fragments discarded during IP reassembly (retransmission
    /// overlapping a partially received datagram).
    pub dup_frags: u64,
    /// Reliable mode: datagrams abandoned after `max_retries`.
    pub gave_up: u64,
}

#[derive(Debug, Default)]
struct IpReassembly {
    total: Option<u64>,
    have: u64,
    /// (offset, data-message, descriptors), in arrival order.
    parts: Vec<(u64, Message<PhysAddr>, Vec<Descriptor>)>,
}

/// A datagram awaiting acknowledgement (reliable mode).
#[derive(Debug)]
struct PendingMsg {
    /// The driver-ready packets, kept for retransmission. They reference
    /// the application's (still-mapped) virtual buffers plus the header
    /// slab slots written at `output` time.
    packets: Vec<TxPacket>,
    /// When the RTO next expires.
    next_at: SimTime,
    /// Current RTO (doubles per retry up to `rto_max`).
    rto: SimDuration,
    retries: u32,
}

/// The UDP/IP protocol engine for one host.
#[derive(Debug)]
pub struct ProtoStack {
    /// Configuration.
    pub cfg: ProtoConfig,
    slab_region: osiris_mem::VirtRegion,
    slab_base: VirtAddr,
    slab_slots: u32,
    slab_next: u32,
    ip_id: u32,
    /// This host's model-level IP address, stamped into outgoing headers.
    src_host: u16,
    /// In-flight reassemblies, keyed by `(source host, datagram id)` —
    /// ids are per-sender counters, so on a fan-in path (incast) two
    /// senders' datagrams may carry the same id concurrently.
    reasm: HashMap<(u16, u32), IpReassembly>,
    /// Reliable mode: unacknowledged datagrams by id.
    unacked: HashMap<u32, PendingMsg>,
    /// Reliable mode: `(src, id)` pairs already handed to the application,
    /// so retransmissions are re-acked but not re-delivered.
    delivered_ids: HashSet<(u16, u32)>,
    stats: StackCounters,
    timeline: Timeline,
    /// Timeline track for this stack's CPU spans (`<scope>.stack`).
    track: String,
    /// Protocol CPU is one resource: successive per-PDU spans on this
    /// track are clamped so they never overlap even when a call's nominal
    /// start predates the previous call's finish.
    tx_span_floor: SimTime,
    rx_span_floor: SimTime,
    /// Causal identity of the PDU currently in `input` (the carrier's, or
    /// re-minted from the parsed IP header).
    cur_rx_ctx: Option<TraceCtx>,
}

/// The stack's registry-visible counters (scope `<probe>.stack`).
#[derive(Debug, Clone)]
struct StackCounters {
    delivered: Counter,
    dropped: Counter,
    lazy_recoveries: Counter,
    frags_out: Counter,
    frags_in: Counter,
    retransmits: Counter,
    acks_received: Counter,
    dup_datagrams: Counter,
    dup_frags: Counter,
    gave_up: Counter,
}

impl StackCounters {
    fn with_probe(probe: &Probe) -> Self {
        let p = probe.scoped("stack");
        StackCounters {
            delivered: p.counter("delivered"),
            dropped: p.counter("dropped"),
            lazy_recoveries: p.counter("lazy_recoveries"),
            frags_out: p.counter("frags_out"),
            frags_in: p.counter("frags_in"),
            retransmits: p.counter("retransmits"),
            acks_received: p.counter("acks_received"),
            dup_datagrams: p.counter("dup_datagrams"),
            dup_frags: p.counter("dup_frags"),
            gave_up: p.counter("gave_up"),
        }
    }
}

/// Bytes per header-slab slot (fits either header comfortably).
const SLAB_SLOT: u32 = 64;

impl ProtoStack {
    /// Builds a stack with detached counters, allocating its header slab
    /// in `asp` (standalone use).
    pub fn new(cfg: ProtoConfig, host: &mut HostMachine, asp: &mut AddressSpace) -> Self {
        ProtoStack::with_probe(cfg, host, asp, &Probe::detached())
    }

    /// Builds a stack publishing its counters under `<scope>.stack`.
    pub fn with_probe(
        cfg: ProtoConfig,
        host: &mut HostMachine,
        asp: &mut AddressSpace,
        probe: &Probe,
    ) -> Self {
        let slots = 1024u32;
        let region = asp
            .alloc_and_map((slots * SLAB_SLOT) as u64, &mut host.alloc)
            .expect("header slab allocation");
        // The slab is wired for its lifetime (boot cost, uncharged).
        asp.wire(region.base, region.len).expect("slab wiring");
        ProtoStack {
            cfg,
            slab_region: region,
            slab_base: region.base,
            slab_slots: slots,
            slab_next: 0,
            ip_id: 1,
            src_host: 0,
            reasm: HashMap::new(),
            unacked: HashMap::new(),
            delivered_ids: HashSet::new(),
            stats: StackCounters::with_probe(probe),
            timeline: Timeline::default(),
            track: probe.scoped("stack").scope().to_string(),
            tx_span_floor: SimTime::ZERO,
            rx_span_floor: SimTime::ZERO,
            cur_rx_ctx: None,
        }
    }

    /// Attaches the timeline this stack records its per-PDU protocol
    /// spans on (disabled/detached by default).
    pub fn set_timeline(&mut self, timeline: &Timeline) {
        self.timeline = timeline.clone();
    }

    /// Sets the source-host address stamped into outgoing IP headers.
    pub fn set_src_host(&mut self, src: u16) {
        self.src_host = src;
    }

    /// Stack counters (a copy of the current values).
    pub fn stats(&self) -> StackStats {
        StackStats {
            delivered: self.stats.delivered.get(),
            dropped: self.stats.dropped.get(),
            lazy_recoveries: self.stats.lazy_recoveries.get(),
            frags_out: self.stats.frags_out.get(),
            frags_in: self.stats.frags_in.get(),
            retransmits: self.stats.retransmits.get(),
            acks_received: self.stats.acks_received.get(),
            dup_datagrams: self.stats.dup_datagrams.get(),
            dup_frags: self.stats.dup_frags.get(),
            gave_up: self.stats.gave_up.get(),
        }
    }

    /// The header slab's virtual region (ADC setup authorizes its frames).
    pub fn slab_region(&self) -> osiris_mem::VirtRegion {
        self.slab_region
    }

    fn slab_slot(&mut self) -> VirtAddr {
        let slot = self.slab_next % self.slab_slots;
        self.slab_next += 1;
        self.slab_base.offset((slot * SLAB_SLOT) as u64)
    }

    /// UDP + IP output: turns application `data` into driver-ready PDUs.
    /// Returns the packets and the time protocol processing finished.
    #[allow(clippy::too_many_arguments)]
    pub fn output(
        &mut self,
        now: SimTime,
        host: &mut HostMachine,
        asp: &AddressSpace,
        data: Message<VirtAddr>,
        src_port: u16,
        dst_port: u16,
        dst_host: u16,
    ) -> Result<(Vec<TxPacket>, SimTime), MapError> {
        let data_len = data.len();
        let mut t = now;

        // ── UDP ────────────────────────────────────────────────────────
        let cksum = if self.cfg.udp_checksum {
            let (finish, ck) = self.checksum_virt(t, host, asp, &data)?;
            t = finish;
            ck
        } else {
            0
        };
        let udp = UdpHeader {
            src_port,
            dst_port,
            len: data_len as u32,
            cksum,
        };
        let udp_va = self.slab_slot();
        let udp_pa = asp.translate_addr(udp_va)?;
        t = host.cpu_write(t, udp_pa, &udp.encode()).finish;
        t = host.run_software(t, host.spec.costs.udp_fixed).finish;
        let mut datagram = data;
        datagram.push_header(udp_va, UDP_HEADER_BYTES as u32);

        // ── IP ─────────────────────────────────────────────────────────
        let id = self.ip_id;
        self.ip_id += 1;
        // Mint the causal identity here: it equals the receiver's IP
        // reassembly key, so both ends agree without extra wire bytes.
        let ctx = TraceCtx {
            host: self.src_host,
            pdu: id,
        };
        let total = datagram.len();
        let plan = fragment_layout(total, self.cfg.mtu);
        let mut packets = Vec::with_capacity(plan.count());
        let mut rest = datagram;
        let mut offset = 0u64;
        for (i, &size) in plan.sizes.iter().enumerate() {
            let mut frag = rest.split_off_front(size as u64);
            let hdr = IpHeader {
                id,
                total_len: total as u32,
                frag_off: offset as u32,
                more_frags: i + 1 < plan.count(),
                proto: IPPROTO_UDP,
                src: self.src_host,
                dst: dst_host,
            };
            let ip_va = self.slab_slot();
            let ip_pa = asp.translate_addr(ip_va)?;
            t = host.cpu_write(t, ip_pa, &hdr.encode()).finish;
            t = host.run_software(t, host.spec.costs.ip_fixed).finish;
            frag.push_header(ip_va, IP_HEADER_BYTES as u32);
            packets.push(TxPacket { msg: frag, ctx });
            offset += size as u64;
            self.stats.frags_out.incr();
        }
        if self.timeline.is_enabled() {
            let from = now.max(self.tx_span_floor);
            if t > from {
                self.timeline
                    .span_ctx(&self.track, "proto.tx", ctx, from, t);
            }
            self.tx_span_floor = self.tx_span_floor.max(t);
        }
        // Reliable mode: hold the datagram for acknowledgement. ACKs
        // themselves are fire-and-forget (retransmitting the data covers
        // a lost ack).
        if self.cfg.reliable && dst_port != ACK_PORT {
            self.unacked.insert(
                id,
                PendingMsg {
                    packets: packets.clone(),
                    next_at: t + self.cfg.rto_initial,
                    rto: self.cfg.rto_initial,
                    retries: 0,
                },
            );
        }
        Ok((packets, t))
    }

    /// Builds the acknowledgement datagram for `acked_id` (reliable mode):
    /// a normal 4-byte UDP/IP datagram addressed to [`ACK_PORT`] on the
    /// sender, paying the usual header-build costs.
    pub fn output_ack(
        &mut self,
        now: SimTime,
        host: &mut HostMachine,
        asp: &AddressSpace,
        acked_id: u32,
        dst_host: u16,
    ) -> Result<(Vec<TxPacket>, SimTime), MapError> {
        let va = self.slab_slot();
        let pa = asp.translate_addr(va)?;
        let t = host.cpu_write(now, pa, &acked_id.to_be_bytes()).finish;
        let msg = Message::single(va, 4);
        self.output(t, host, asp, msg, ACK_PORT, ACK_PORT, dst_host)
    }

    /// True while any datagram awaits acknowledgement (reliable mode).
    pub fn has_unacked(&self) -> bool {
        !self.unacked.is_empty()
    }

    /// The earliest pending RTO expiry, if any.
    pub fn next_retransmit_at(&self) -> Option<SimTime> {
        self.unacked.values().map(|p| p.next_at).min()
    }

    /// Collects every datagram whose RTO expired by `now` for
    /// retransmission, doubling its backoff. Datagrams out of retries are
    /// abandoned (counted as `gave_up`), which bounds every run. Returns
    /// the packets to re-enqueue, in datagram-id order for determinism.
    pub fn poll_retransmit(&mut self, now: SimTime) -> Vec<TxPacket> {
        let mut due: Vec<u32> = self
            .unacked
            .iter()
            .filter(|(_, p)| p.next_at <= now)
            .map(|(&id, _)| id)
            .collect();
        due.sort_unstable();
        let mut out = Vec::new();
        for id in due {
            let p = self.unacked.get_mut(&id).expect("listed above");
            if p.retries >= self.cfg.max_retries {
                self.unacked.remove(&id);
                self.stats.gave_up.incr();
                continue;
            }
            p.retries += 1;
            p.rto = (p.rto + p.rto).min(self.cfg.rto_max);
            p.next_at = now + p.rto;
            self.stats.retransmits.incr();
            if self.timeline.is_enabled() {
                if let Some(pkt) = p.packets.first() {
                    self.timeline
                        .instant_ctx(&self.track, "proto.retransmit", pkt.ctx, now);
                }
            }
            out.extend(p.packets.iter().cloned());
        }
        out
    }

    /// Translates a driver-ready packet into its physical buffer chain.
    pub fn to_phys(&self, asp: &AddressSpace, pkt: &TxPacket) -> Result<Vec<PhysBuffer>, MapError> {
        let mut bufs = Vec::new();
        for seg in pkt.msg.segs() {
            bufs.extend(asp.translate(seg.addr, seg.len as u64)?);
        }
        Ok(osiris_mem::buffer::coalesce(&bufs))
    }

    /// IP + UDP input: absorbs one PDU from the driver.
    pub fn input(
        &mut self,
        now: SimTime,
        host: &mut HostMachine,
        pdu: &DeliveredPdu,
    ) -> (RxVerdict, SimTime) {
        self.cur_rx_ctx = pdu.ctx;
        let (verdict, t) = self.input_parse(now, host, pdu);
        if self.timeline.is_enabled() {
            if let Some(ctx) = self.cur_rx_ctx {
                let from = now.max(self.rx_span_floor);
                if t > from {
                    self.timeline
                        .span_ctx(&self.track, "proto.rx", ctx, from, t);
                }
            }
            self.rx_span_floor = self.rx_span_floor.max(t);
        }
        (verdict, t)
    }

    fn input_parse(
        &mut self,
        now: SimTime,
        host: &mut HostMachine,
        pdu: &DeliveredPdu,
    ) -> (RxVerdict, SimTime) {
        let mut t = now;
        let descs: Vec<Descriptor> = pdu.bufs.clone();

        // Parse the IP header out of the first buffer (through the cache).
        let mut hdr_bytes = [0u8; IP_HEADER_BYTES];
        let rr = host.cpu_read(t, descs[0].addr, &mut hdr_bytes);
        t = rr.grant.finish;
        t = host.run_software(t, host.spec.costs.ip_fixed).finish;
        let Some(ip) = IpHeader::decode(&hdr_bytes) else {
            // A stale-cache hit can corrupt the header itself; §2.3 says
            // invalidate and re-evaluate before declaring an error.
            t = host
                .invalidate_cache(t, descs[0].addr, IP_HEADER_BYTES)
                .finish;
            let rr2 = host.cpu_read(t, descs[0].addr, &mut hdr_bytes);
            t = rr2.grant.finish;
            match IpHeader::decode(&hdr_bytes) {
                Some(h) if rr.stale_bytes > 0 => {
                    self.stats.lazy_recoveries.incr();
                    return self.input_ip(t, host, h, descs, pdu.len);
                }
                _ => {
                    self.stats.dropped.incr();
                    return (
                        RxVerdict::Drop {
                            reason: "bad IP header",
                            descs,
                        },
                        t,
                    );
                }
            }
        };
        self.input_ip(t, host, ip, descs, pdu.len)
    }

    fn input_ip(
        &mut self,
        now: SimTime,
        host: &mut HostMachine,
        ip: IpHeader,
        descs: Vec<Descriptor>,
        pdu_len: u32,
    ) -> (RxVerdict, SimTime) {
        let mut t = now;
        self.stats.frags_in.incr();
        // Re-mint the identity from the header if the carrier lost it
        // (raw wire-image PDUs, generator traffic): same (src, id) key.
        if self.cur_rx_ctx.is_none() {
            self.cur_rx_ctx = Some(TraceCtx {
                host: ip.src,
                pdu: ip.id,
            });
        }

        // Strip the IP header from the buffer chain.
        let mut data = Message::<PhysAddr>::empty();
        for d in &descs {
            data.join(Message::single(d.addr, d.len));
        }
        let _ = data.pop_header(IP_HEADER_BYTES as u32);
        let frag_data_len = pdu_len as u64 - IP_HEADER_BYTES as u64;

        // Reassemble. The key includes the source host: datagram ids are
        // per-sender counters, so concurrent senders (incast) collide on
        // the id alone.
        let key = (ip.src, ip.id);

        // Reliable mode: a datagram we already delivered is arriving again
        // (lost ack or crossing retransmission). Re-ack, don't re-deliver.
        if self.cfg.reliable && self.delivered_ids.contains(&key) {
            self.stats.dup_datagrams.incr();
            return (
                RxVerdict::Duplicate {
                    src: ip.src,
                    id: ip.id,
                    descs,
                },
                t,
            );
        }

        let entry = self.reasm.entry(key).or_default();
        // A retransmission can overlap a partially received datagram;
        // absorbing the same offset twice would inflate `have` past the
        // real byte count and wedge the UDP length check. Discard exact
        // duplicates.
        if entry
            .parts
            .iter()
            .any(|(off, _, _)| *off == ip.frag_off as u64)
        {
            self.stats.dup_frags.incr();
            return (
                RxVerdict::Drop {
                    reason: "duplicate fragment",
                    descs,
                },
                t,
            );
        }
        entry.have += frag_data_len;
        entry.parts.push((ip.frag_off as u64, data, descs));
        if !ip.more_frags {
            entry.total = Some(ip.frag_off as u64 + frag_data_len);
        }
        let complete = matches!(entry.total, Some(total) if entry.have >= total);
        if !complete {
            return (RxVerdict::Incomplete, t);
        }

        // Datagram complete: stitch fragments in offset order.
        let mut entry = self.reasm.remove(&key).expect("present");
        entry.parts.sort_by_key(|&(off, _, _)| off);
        let mut datagram = Message::<PhysAddr>::empty();
        let mut all_descs = Vec::new();
        for (_, m, d) in entry.parts {
            datagram.join(m);
            all_descs.extend(d);
        }

        // ── UDP input ──────────────────────────────────────────────────
        let udp_at = datagram.segs()[0].addr;
        let mut udp_bytes = [0u8; UDP_HEADER_BYTES];
        let rr = host.cpu_read(t, udp_at, &mut udp_bytes);
        t = rr.grant.finish;
        let udp_stale = rr.stale_bytes > 0;
        t = host.run_software(t, host.spec.costs.udp_fixed).finish;
        let mut udp = UdpHeader::decode(&udp_bytes).expect("12 bytes always decode");
        let _ = datagram.pop_header(UDP_HEADER_BYTES as u32);
        let len = datagram.len();
        if udp.len as u64 != len {
            // §2.3 again: a stale header is invalidated and re-evaluated
            // before the message is considered in error.
            if udp_stale {
                t = host.invalidate_cache(t, udp_at, UDP_HEADER_BYTES).finish;
                let rr2 = host.cpu_read(t, udp_at, &mut udp_bytes);
                t = rr2.grant.finish;
                udp = UdpHeader::decode(&udp_bytes).expect("12 bytes always decode");
            }
            if udp.len as u64 == len {
                self.stats.lazy_recoveries.incr();
            } else {
                self.stats.dropped.incr();
                return (
                    RxVerdict::Drop {
                        reason: "UDP length mismatch",
                        descs: all_descs,
                    },
                    t,
                );
            }
        }

        // Reliable mode: a datagram on the ACK port carries a 4-byte
        // acknowledged id, releasing the matching pending datagram.
        if self.cfg.reliable && udp.dst_port == ACK_PORT {
            let mut id_bytes = [0u8; 4];
            let rr = host.cpu_read(t, datagram.segs()[0].addr, &mut id_bytes);
            t = rr.grant.finish;
            let acked = u32::from_be_bytes(id_bytes);
            self.unacked.remove(&acked);
            self.stats.acks_received.incr();
            return (
                RxVerdict::Ack {
                    acked,
                    descs: all_descs,
                },
                t,
            );
        }

        if self.cfg.udp_checksum && udp.cksum != 0 {
            let (t2, ck, stale) = self.checksum_phys(t, host, &datagram);
            t = t2;
            if ck != udp.cksum {
                if stale > 0 {
                    // §2.3 lazy recovery: invalidate the stale range and
                    // re-evaluate before declaring the message in error.
                    for seg in datagram.segs() {
                        t = host.invalidate_cache(t, seg.addr, seg.len as usize).finish;
                    }
                    let (t3, ck2, _) = self.checksum_phys(t, host, &datagram);
                    t = t3;
                    if ck2 == udp.cksum {
                        self.stats.lazy_recoveries.incr();
                    } else {
                        self.stats.dropped.incr();
                        return (
                            RxVerdict::Drop {
                                reason: "UDP checksum",
                                descs: all_descs,
                            },
                            t,
                        );
                    }
                } else {
                    self.stats.dropped.incr();
                    return (
                        RxVerdict::Drop {
                            reason: "UDP checksum",
                            descs: all_descs,
                        },
                        t,
                    );
                }
            }
        }

        self.stats.delivered.incr();
        if self.cfg.reliable {
            self.delivered_ids.insert(key);
        }
        (
            RxVerdict::Deliver {
                src: ip.src,
                ctx: self.cur_rx_ctx.unwrap_or(TraceCtx {
                    host: ip.src,
                    pdu: ip.id,
                }),
                dst_port: udp.dst_port,
                data: datagram,
                descs: all_descs,
                len,
            },
            t,
        )
    }

    /// Checksum of a virtual-memory message through the cache.
    fn checksum_virt(
        &self,
        now: SimTime,
        host: &mut HostMachine,
        asp: &AddressSpace,
        msg: &Message<VirtAddr>,
    ) -> Result<(SimTime, u16), MapError> {
        let mut bytes = Vec::with_capacity(msg.len() as usize);
        let mut t = now;
        for seg in msg.segs() {
            for pb in asp.translate(seg.addr, seg.len as u64)? {
                let mut buf = vec![0u8; pb.len as usize];
                let rr = host.cpu_read(t, pb.addr, &mut buf);
                t = rr.grant.finish;
                bytes.extend_from_slice(&buf);
            }
        }
        let words = (bytes.len() as u64).div_ceil(4);
        t = host
            .run_cycles(t, words * host.spec.costs.checksum_cycles_per_word)
            .finish;
        Ok((t, internet_checksum(&bytes)))
    }

    /// Checksum of a physical-memory message through the cache, reporting
    /// stale bytes (the §2.3 signal).
    fn checksum_phys(
        &self,
        now: SimTime,
        host: &mut HostMachine,
        msg: &Message<PhysAddr>,
    ) -> (SimTime, u16, u64) {
        let mut bytes = Vec::with_capacity(msg.len() as usize);
        let mut t = now;
        let mut stale = 0;
        for seg in msg.segs() {
            let mut buf = vec![0u8; seg.len as usize];
            let rr = host.cpu_read(t, seg.addr, &mut buf);
            t = rr.grant.finish;
            stale += rr.stale_bytes;
            bytes.extend_from_slice(&buf);
        }
        let words = (bytes.len() as u64).div_ceil(4);
        t = host
            .run_cycles(t, words * host.spec.costs.checksum_cycles_per_word)
            .finish;
        (t, internet_checksum(&bytes), stale)
    }

    /// Builds the raw PDU byte images of one datagram — what the wire
    /// would carry. Used by the §4 receive-side experiments, where "the
    /// receiver processor of the OSIRIS board was programmed to generate
    /// fictitious PDUs as fast as the receiving host could absorb them".
    pub fn build_wire_pdus(
        cfg: ProtoConfig,
        id: u32,
        src_port: u16,
        dst_port: u16,
        payload: &[u8],
    ) -> Vec<Vec<u8>> {
        let cksum = if cfg.udp_checksum {
            internet_checksum(payload)
        } else {
            0
        };
        let udp = UdpHeader {
            src_port,
            dst_port,
            len: payload.len() as u32,
            cksum,
        };
        let mut datagram = udp.encode().to_vec();
        datagram.extend_from_slice(payload);
        let plan = fragment_layout(datagram.len() as u64, cfg.mtu);
        let mut pdus = Vec::with_capacity(plan.count());
        let mut off = 0usize;
        for (i, &size) in plan.sizes.iter().enumerate() {
            let hdr = IpHeader {
                id,
                total_len: datagram.len() as u32,
                frag_off: off as u32,
                more_frags: i + 1 < plan.count(),
                proto: IPPROTO_UDP,
                src: 1,
                dst: 0,
            };
            let mut pdu = hdr.encode().to_vec();
            pdu.extend_from_slice(&datagram[off..off + size as usize]);
            pdus.push(pdu);
            off += size as usize;
        }
        pdus
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use osiris_host::machine::MachineSpec;

    fn setup(checksum: bool) -> (HostMachine, AddressSpace, ProtoStack) {
        let mut host = HostMachine::boot(MachineSpec::ds5000_200(), 11);
        let mut asp = AddressSpace::new(host.spec.page_size);
        let stack = ProtoStack::new(
            ProtoConfig {
                udp_checksum: checksum,
                ..ProtoConfig::paper_default()
            },
            &mut host,
            &mut asp,
        );
        (host, asp, stack)
    }

    /// Writes a payload into a fresh VM region and returns its message.
    fn payload(host: &mut HostMachine, asp: &mut AddressSpace, bytes: &[u8]) -> Message<VirtAddr> {
        let r = asp
            .alloc_and_map(bytes.len() as u64, &mut host.alloc)
            .unwrap();
        let mut off = 0u64;
        for pb in asp.translate(r.base, bytes.len() as u64).unwrap() {
            host.phys.write(
                pb.addr,
                &bytes[off as usize..(off + pb.len as u64) as usize],
            );
            off += pb.len as u64;
        }
        Message::single(r.base, bytes.len() as u32)
    }

    #[test]
    fn small_message_is_one_packet() {
        let (mut host, mut asp, mut stack) = setup(false);
        let data = payload(&mut host, &mut asp, &[7u8; 1000]);
        let (pkts, t) = stack
            .output(SimTime::ZERO, &mut host, &asp, data, 5, 7, 2)
            .unwrap();
        assert_eq!(pkts.len(), 1);
        assert!(t > SimTime::ZERO);
        // IP header + UDP header + data.
        assert_eq!(pkts[0].msg.len(), 24 + 12 + 1000);
        // First two segments are the slab headers.
        assert!(pkts[0].msg.seg_count() >= 3);
    }

    #[test]
    fn large_message_fragments_at_mtu() {
        let (mut host, mut asp, mut stack) = setup(false);
        let data = payload(&mut host, &mut asp, &vec![1u8; 40_000]);
        let (pkts, _) = stack
            .output(SimTime::ZERO, &mut host, &asp, data, 5, 7, 2)
            .unwrap();
        // 40_012 bytes of datagram at 16 KB per fragment = 3 fragments.
        assert_eq!(pkts.len(), 3);
        for p in &pkts {
            assert!(p.msg.len() <= stack.cfg.mtu as u64);
        }
        assert_eq!(stack.stats().frags_out, 3);
    }

    #[test]
    fn wire_pdus_parse_back() {
        let cfg = ProtoConfig::paper_default();
        let payload: Vec<u8> = (0..40_000u32).map(|i| (i % 241) as u8).collect();
        let pdus = ProtoStack::build_wire_pdus(cfg, 42, 9, 10, &payload);
        assert_eq!(pdus.len(), 3);
        let h0 = IpHeader::decode(&pdus[0]).unwrap();
        assert!(h0.more_frags);
        assert_eq!(h0.id, 42);
        let hl = IpHeader::decode(pdus.last().unwrap()).unwrap();
        assert!(!hl.more_frags);
        let udp = UdpHeader::decode(&pdus[0][IP_HEADER_BYTES..]).unwrap();
        assert_eq!(udp.len as usize, payload.len());
        assert_eq!(udp.dst_port, 10);
        // Data survives: concatenate fragment payloads and compare.
        let mut joined = Vec::new();
        for p in &pdus {
            joined.extend_from_slice(&p[IP_HEADER_BYTES..]);
        }
        assert_eq!(&joined[UDP_HEADER_BYTES..], &payload[..]);
    }

    /// Full loop: wire PDUs written into "receive buffers", fed through
    /// input, delivered intact.
    fn feed_pdus(
        host: &mut HostMachine,
        stack: &mut ProtoStack,
        pdus: &[Vec<u8>],
        base: u64,
    ) -> Option<(u16, Vec<u8>)> {
        let mut verdict = None;
        let mut t = SimTime::ZERO;
        for (i, p) in pdus.iter().enumerate() {
            let addr = PhysAddr(base + (i as u64) * 0x8000);
            host.phys.write(addr, p);
            let pdu = DeliveredPdu {
                vci: osiris_atm::Vci(33),
                bufs: vec![Descriptor::tx(
                    addr,
                    p.len() as u32,
                    osiris_atm::Vci(33),
                    true,
                )],
                len: p.len() as u32,
                ready_at: t,
                ctx: None,
            };
            let (v, t2) = stack.input(t, host, &pdu);
            t = t2;
            if let RxVerdict::Deliver {
                dst_port,
                data,
                len,
                ..
            } = v
            {
                let mut bytes = Vec::new();
                for seg in data.segs() {
                    bytes.extend_from_slice(host.phys.read(seg.addr, seg.len as usize));
                }
                assert_eq!(bytes.len() as u64, len);
                verdict = Some((dst_port, bytes));
            }
        }
        verdict
    }

    #[test]
    fn input_reassembles_and_delivers() {
        let (mut host, _asp, mut stack) = setup(false);
        let data: Vec<u8> = (0..50_000u32).map(|i| (i % 239) as u8).collect();
        let pdus = ProtoStack::build_wire_pdus(stack.cfg, 7, 1, 99, &data);
        let (port, bytes) = feed_pdus(&mut host, &mut stack, &pdus, 0x10_0000).unwrap();
        assert_eq!(port, 99);
        assert_eq!(bytes, data);
        assert_eq!(stack.stats().delivered, 1);
        assert_eq!(stack.stats().frags_in, pdus.len() as u64);
    }

    #[test]
    fn checksum_validates_good_data() {
        let (mut host, _asp, mut stack) = setup(true);
        let data = vec![0x5Au8; 9000];
        let pdus = ProtoStack::build_wire_pdus(stack.cfg, 8, 1, 50, &data);
        let out = feed_pdus(&mut host, &mut stack, &pdus, 0x20_0000);
        assert!(out.is_some());
        assert_eq!(stack.stats().dropped, 0);
    }

    #[test]
    fn checksum_drops_corrupt_data() {
        let (mut host, _asp, mut stack) = setup(true);
        let data = vec![0x5Au8; 9000];
        let mut pdus = ProtoStack::build_wire_pdus(stack.cfg, 9, 1, 50, &data);
        let n = pdus[0].len();
        pdus[0][n - 10] ^= 0xFF; // corrupt payload, not headers
        let out = feed_pdus(&mut host, &mut stack, &pdus, 0x30_0000);
        assert!(out.is_none());
        assert_eq!(stack.stats().dropped, 1);
        assert_eq!(stack.stats().lazy_recoveries, 0);
    }

    #[test]
    fn lazy_recovery_repairs_stale_cache_reads() {
        let (mut host, _asp, mut stack) = setup(true);
        let addr = PhysAddr(0x40_0000);
        // Step 1: put OLD bytes at the buffer address and read them so the
        // (incoherent) cache holds them.
        let old = vec![0u8; 2000];
        host.phys.write(addr, &old);
        let mut scratch = vec![0u8; 2000];
        host.cpu_read(SimTime::ZERO, addr, &mut scratch);
        // Step 2: the "board" DMAs a real PDU over the same buffer.
        let data = vec![0xC3u8; 1500];
        let pdus = ProtoStack::build_wire_pdus(stack.cfg, 10, 1, 60, &data);
        assert_eq!(pdus.len(), 1);
        let pdu_bytes = &pdus[0];
        let mut phys = std::mem::replace(&mut host.phys, osiris_mem::PhysMemory::new(4096, 4096));
        host.cache.dma_write(&mut phys, addr, pdu_bytes);
        host.phys = phys;
        // Step 3: feed it through input. The checksum first sees stale
        // bytes, recovers via invalidation, and delivers.
        let pdu = DeliveredPdu {
            vci: osiris_atm::Vci(1),
            bufs: vec![Descriptor::tx(
                addr,
                pdu_bytes.len() as u32,
                osiris_atm::Vci(1),
                true,
            )],
            len: pdu_bytes.len() as u32,
            ready_at: SimTime::ZERO,
            ctx: None,
        };
        let (v, _) = stack.input(SimTime::from_us(100), &mut host, &pdu);
        match v {
            RxVerdict::Deliver { len, .. } => assert_eq!(len, 1500),
            other => panic!("expected delivery after lazy recovery, got {other:?}"),
        }
        assert!(
            stack.stats().lazy_recoveries >= 1,
            "recovery must be counted"
        );
        assert_eq!(stack.stats().dropped, 0);
    }

    fn setup_reliable() -> (HostMachine, AddressSpace, ProtoStack) {
        let mut host = HostMachine::boot(MachineSpec::ds5000_200(), 23);
        let mut asp = AddressSpace::new(host.spec.page_size);
        let stack = ProtoStack::new(
            ProtoConfig {
                reliable: true,
                ..ProtoConfig::paper_default()
            },
            &mut host,
            &mut asp,
        );
        (host, asp, stack)
    }

    /// Wraps raw wire bytes as one delivered PDU at `addr`.
    fn pdu_at(host: &mut HostMachine, bytes: &[u8], addr: u64) -> DeliveredPdu {
        host.phys.write(PhysAddr(addr), bytes);
        DeliveredPdu {
            vci: osiris_atm::Vci(33),
            bufs: vec![Descriptor::tx(
                PhysAddr(addr),
                bytes.len() as u32,
                osiris_atm::Vci(33),
                true,
            )],
            len: bytes.len() as u32,
            ready_at: SimTime::ZERO,
            ctx: None,
        }
    }

    #[test]
    fn reliable_output_retransmits_until_acked() {
        let (mut host, mut asp, mut stack) = setup_reliable();
        let data = payload(&mut host, &mut asp, &[9u8; 500]);
        let (pkts, t) = stack
            .output(SimTime::ZERO, &mut host, &asp, data, 5, 7, 2)
            .unwrap();
        assert_eq!(pkts.len(), 1);
        let id = pkts[0].ctx.pdu;
        assert!(stack.has_unacked());

        // Before the RTO nothing is due.
        assert!(stack.poll_retransmit(t).is_empty());
        // After it, the same packets come back and the backoff doubles.
        let due1 = stack.next_retransmit_at().unwrap();
        let again = stack.poll_retransmit(due1);
        assert_eq!(again.len(), 1);
        assert_eq!(again[0].ctx.pdu, id);
        assert_eq!(stack.stats().retransmits, 1);
        let due2 = stack.next_retransmit_at().unwrap();
        assert!(due2.since(due1) > stack.cfg.rto_initial);

        // An arriving ack releases the datagram.
        let ack_wire =
            ProtoStack::build_wire_pdus(stack.cfg, 77, ACK_PORT, ACK_PORT, &id.to_be_bytes());
        assert_eq!(ack_wire.len(), 1);
        let pdu = pdu_at(&mut host, &ack_wire[0], 0x50_0000);
        let (v, _) = stack.input(due2, &mut host, &pdu);
        match v {
            RxVerdict::Ack { acked, .. } => assert_eq!(acked, id),
            other => panic!("expected Ack, got {other:?}"),
        }
        assert!(!stack.has_unacked());
        assert_eq!(stack.stats().acks_received, 1);
    }

    #[test]
    fn reliable_gives_up_after_max_retries() {
        let (mut host, mut asp, mut stack) = setup_reliable();
        stack.cfg.max_retries = 2;
        let data = payload(&mut host, &mut asp, &[4u8; 100]);
        stack
            .output(SimTime::ZERO, &mut host, &asp, data, 5, 7, 2)
            .unwrap();
        let mut polls = 0;
        while let Some(at) = stack.next_retransmit_at() {
            stack.poll_retransmit(at);
            polls += 1;
            assert!(polls < 10, "must terminate");
        }
        assert!(!stack.has_unacked());
        assert_eq!(stack.stats().retransmits, 2);
        assert_eq!(stack.stats().gave_up, 1);
    }

    #[test]
    fn duplicate_datagram_is_suppressed_and_reackable() {
        let (mut host, _asp, mut stack) = setup_reliable();
        let data = vec![0xA1u8; 800];
        let wire = ProtoStack::build_wire_pdus(stack.cfg, 5, 9, 40, &data);
        assert_eq!(wire.len(), 1);
        let pdu = pdu_at(&mut host, &wire[0], 0x60_0000);
        let (v1, t1) = stack.input(SimTime::ZERO, &mut host, &pdu);
        assert!(matches!(v1, RxVerdict::Deliver { .. }));
        // The retransmission of the same datagram is not re-delivered.
        let (v2, _) = stack.input(t1, &mut host, &pdu);
        match v2 {
            RxVerdict::Duplicate { src, id, .. } => {
                assert_eq!((src, id), (1, 5));
            }
            other => panic!("expected Duplicate, got {other:?}"),
        }
        assert_eq!(stack.stats().delivered, 1);
        assert_eq!(stack.stats().dup_datagrams, 1);
    }

    #[test]
    fn duplicate_fragment_does_not_wedge_reassembly() {
        let (mut host, _asp, mut stack) = setup_reliable();
        let data: Vec<u8> = (0..40_000u32).map(|i| (i % 233) as u8).collect();
        let wire = ProtoStack::build_wire_pdus(stack.cfg, 6, 9, 41, &data);
        assert_eq!(wire.len(), 3);
        // Fragment 0 arrives twice (a retransmission overlapping the
        // original), then the rest.
        let order = [0usize, 0, 1, 2];
        let mut t = SimTime::ZERO;
        let mut delivered = None;
        for (i, &fi) in order.iter().enumerate() {
            let pdu = pdu_at(&mut host, &wire[fi], 0x70_0000 + (i as u64) * 0x10000);
            let (v, t2) = stack.input(t, &mut host, &pdu);
            t = t2;
            if let RxVerdict::Deliver { data: msg, len, .. } = v {
                let mut bytes = Vec::new();
                for seg in msg.segs() {
                    bytes.extend_from_slice(host.phys.read(seg.addr, seg.len as usize));
                }
                assert_eq!(bytes.len() as u64, len);
                delivered = Some(bytes);
            }
        }
        assert_eq!(delivered.expect("datagram completes"), data);
        assert_eq!(stack.stats().dup_frags, 1);
    }

    #[test]
    fn tx_checksum_charges_time() {
        let (mut host, mut asp, mut stack) = setup(true);
        let data = payload(&mut host, &mut asp, &vec![3u8; 16 * 1024]);
        let t0 = SimTime::ZERO;
        let (_, t_cksum) = stack.output(t0, &mut host, &asp, data, 1, 2, 3).unwrap();

        let (mut host2, mut asp2, mut stack2) = setup(false);
        let data2 = payload(&mut host2, &mut asp2, &vec![3u8; 16 * 1024]);
        let (_, t_plain) = stack2
            .output(t0, &mut host2, &asp2, data2, 1, 2, 3)
            .unwrap();
        assert!(
            t_cksum.since(t0).as_ps() > t_plain.since(t0).as_ps() * 2,
            "checksumming 16 KB on a 5000/200 must dominate: {} vs {}",
            t_cksum.since(t0),
            t_plain.since(t0)
        );
    }
}
