//! IP fragmentation arithmetic and the §2.2 page-alignment rule.
//!
//! The paper's worked example: a page-aligned 16 KB message sent with a
//! 4 KB MTU. "The inclusion of the IP header reduces the data space
//! available in each fragment to slightly less than 4 KB. Consequently,
//! the data portions of most fragments are not page-aligned, and occupy
//! two physical pages … the transmission of a single, 16 KB application
//! message can result in the processing of up to 14 physical buffers."
//!
//! The fix: "ensuring page alignment of application messages, and …
//! choosing an MTU size that is a multiple of the page size, plus the IP
//! header size" — then every fragment's data portion starts and ends on
//! page boundaries and contributes one buffer per page plus one for the
//! header.
//!
//! # Example
//!
//! ```
//! use osiris_proto::frag::{fragment_layout, page_aligned_mtu};
//!
//! // §2.2's recipe: MTU = k pages + IP header keeps fragments aligned.
//! let mtu = page_aligned_mtu(4, 4096); // 16 KB of data per fragment
//! let plan = fragment_layout(256 * 1024, mtu);
//! assert_eq!(plan.count(), 16);
//! assert!(plan.sizes.iter().all(|&s| s == 16 * 1024));
//! ```

use crate::wire::IP_HEADER_BYTES;

/// How one datagram splits into fragments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FragPlan {
    /// Data bytes carried by each fragment, in order.
    pub sizes: Vec<u32>,
}

impl FragPlan {
    /// Number of fragments.
    pub fn count(&self) -> usize {
        self.sizes.len()
    }

    /// Byte offset of fragment `i`.
    pub fn offset_of(&self, i: usize) -> u32 {
        self.sizes[..i].iter().sum()
    }

    /// Total bytes across fragments.
    pub fn total(&self) -> u64 {
        self.sizes.iter().map(|&s| s as u64).sum()
    }
}

/// Splits `total_len` data bytes under `mtu` (the largest PDU the driver
/// accepts, *including* the IP header). Every fragment except possibly the
/// last carries `mtu - IP_HEADER_BYTES` data bytes.
pub fn fragment_layout(total_len: u64, mtu: u32) -> FragPlan {
    let per = mtu as u64 - IP_HEADER_BYTES as u64;
    assert!(per > 0, "MTU smaller than the IP header");
    if total_len == 0 {
        return FragPlan { sizes: vec![0] };
    }
    let mut sizes = Vec::with_capacity((total_len / per + 1) as usize);
    let mut rest = total_len;
    while rest > 0 {
        let take = rest.min(per);
        sizes.push(take as u32);
        rest -= take;
    }
    FragPlan { sizes }
}

/// The MTU that makes fragment data portions page-aligned: `k` pages of
/// data plus the IP header (§2.2's recommendation).
pub fn page_aligned_mtu(pages_per_fragment: u32, page_size: u32) -> u32 {
    pages_per_fragment * page_size + IP_HEADER_BYTES as u32
}

/// Counts the physical buffers a fragment occupies, given where its data
/// starts relative to a page boundary. The header always contributes one
/// buffer; the data portion contributes one per page it touches (assuming
/// the §2.2 worst case of no physically contiguous pages).
pub fn fragment_buffer_count(data_offset_in_page: u32, data_len: u32, page_size: u32) -> u32 {
    if data_len == 0 {
        return 1;
    }
    let first = data_offset_in_page / page_size;
    let last = (data_offset_in_page + data_len - 1) / page_size;
    1 + (last - first + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_fragmentation_below_mtu() {
        let plan = fragment_layout(1000, 16 * 1024 + IP_HEADER_BYTES as u32);
        assert_eq!(plan.sizes, vec![1000]);
        assert_eq!(plan.count(), 1);
    }

    #[test]
    fn exact_multiples_split_cleanly() {
        let mtu = page_aligned_mtu(1, 4096); // 4096 + 24
        let plan = fragment_layout(16 * 1024, mtu);
        assert_eq!(plan.sizes, vec![4096; 4]);
        assert_eq!(plan.total(), 16 * 1024);
        assert_eq!(plan.offset_of(2), 8192);
    }

    #[test]
    fn trailing_partial_fragment() {
        let mtu = page_aligned_mtu(1, 4096);
        let plan = fragment_layout(10_000, mtu);
        assert_eq!(plan.sizes, vec![4096, 4096, 1808]);
    }

    #[test]
    fn papers_worked_example_misaligned_mtu() {
        // MTU = 4 KB exactly (page size): data per fragment = 4096 - 24 =
        // 4072, so fragments 2.. start mid-page and straddle two pages.
        let plan = fragment_layout(16 * 1024, 4096);
        assert_eq!(plan.sizes.len(), 5, "16 KB no longer fits in 4 fragments");
        // Count buffers: fragment i's data starts at offset 4072*i within
        // the page-aligned message.
        let total: u32 = (0..plan.count())
            .map(|i| fragment_buffer_count(plan.offset_of(i) % 4096, plan.sizes[i], 4096))
            .sum();
        // The paper says "up to 14": 4 two-page fragments + headers = 12,
        // plus the runt fragment ≈ 13–14 depending on alignment.
        assert!((12..=14).contains(&total), "got {total} buffers");
    }

    #[test]
    fn aligned_mtu_minimises_buffers() {
        // §2.2's fix: MTU = page size + header.
        let mtu = page_aligned_mtu(1, 4096);
        let plan = fragment_layout(16 * 1024, mtu);
        let total: u32 = (0..plan.count())
            .map(|i| fragment_buffer_count(plan.offset_of(i) % 4096, plan.sizes[i], 4096))
            .sum();
        // 4 fragments × (1 header + 1 page) = 8 buffers.
        assert_eq!(total, 8);
    }

    #[test]
    fn buffer_count_header_only_for_empty_data() {
        assert_eq!(fragment_buffer_count(0, 0, 4096), 1);
        assert_eq!(fragment_buffer_count(0, 4096, 4096), 2);
        assert_eq!(
            fragment_buffer_count(1, 4096, 4096),
            3,
            "unaligned spans two pages"
        );
    }

    #[test]
    fn zero_length_datagram_has_one_empty_fragment() {
        let plan = fragment_layout(0, 4096);
        assert_eq!(plan.sizes, vec![0]);
    }

    #[test]
    fn large_message_fragment_count() {
        // 256 KB with the paper's 16 KB MTU (16 KB data + header per frag
        // when page-aligned).
        let mtu = page_aligned_mtu(4, 4096);
        let plan = fragment_layout(256 * 1024, mtu);
        assert_eq!(plan.count(), 16);
        assert!(plan.sizes.iter().all(|&s| s == 16 * 1024));
    }
}
