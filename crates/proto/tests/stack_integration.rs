//! Stack-level integration: output → wire bytes → input across two
//! independent hosts' stacks, exercising the paths a single-host unit
//! test can't (different cache states, fragment interleaving of several
//! datagrams, duplicate fragments).

use osiris_atm::Vci;
use osiris_board::descriptor::Descriptor;
use osiris_host::driver::DeliveredPdu;
use osiris_host::machine::{HostMachine, MachineSpec};
use osiris_mem::AddressSpace;
use osiris_mem::PhysAddr;
use osiris_proto::stack::{ProtoConfig, ProtoStack, RxVerdict};
use osiris_proto::wire::IP_HEADER_BYTES;
use osiris_sim::SimTime;

fn rig(checksum: bool) -> (HostMachine, AddressSpace, ProtoStack) {
    let mut host = HostMachine::boot(MachineSpec::dec3000_600(), 21);
    let mut asp = AddressSpace::new(host.spec.page_size);
    let stack = ProtoStack::new(
        ProtoConfig {
            udp_checksum: checksum,
            ..ProtoConfig::paper_default()
        },
        &mut host,
        &mut asp,
    );
    (host, asp, stack)
}

fn deliver(
    host: &mut HostMachine,
    stack: &mut ProtoStack,
    base: u64,
    pdu_bytes: &[u8],
    t: SimTime,
) -> RxVerdict {
    let addr = PhysAddr(base);
    host.phys.write(addr, pdu_bytes);
    let pdu = DeliveredPdu {
        vci: Vci(9),
        bufs: vec![Descriptor::tx(addr, pdu_bytes.len() as u32, Vci(9), true)],
        len: pdu_bytes.len() as u32,
        ready_at: t,
        ctx: None,
    };
    stack.input(t, host, &pdu).0
}

#[test]
fn interleaved_datagrams_reassemble_by_id() {
    let (mut host, _asp, mut stack) = rig(false);
    let a: Vec<u8> = (0..40_000).map(|i| (i % 13) as u8).collect();
    let b: Vec<u8> = (0..40_000).map(|i| (i % 7) as u8).collect();
    let pdus_a = ProtoStack::build_wire_pdus(stack.cfg, 1, 10, 20, &a);
    let pdus_b = ProtoStack::build_wire_pdus(stack.cfg, 2, 10, 21, &b);
    // Interleave fragments of the two datagrams.
    let mut delivered = Vec::new();
    let mut t = SimTime::ZERO;
    let mut base = 0x10_0000u64;
    for i in 0..pdus_a.len().max(pdus_b.len()) {
        for pdus in [&pdus_a, &pdus_b] {
            if let Some(p) = pdus.get(i) {
                if let RxVerdict::Deliver {
                    dst_port,
                    data,
                    len,
                    ..
                } = deliver(&mut host, &mut stack, base, p, t)
                {
                    let mut bytes = Vec::new();
                    for seg in data.segs() {
                        bytes.extend_from_slice(host.phys.read(seg.addr, seg.len as usize));
                    }
                    assert_eq!(bytes.len() as u64, len);
                    delivered.push((dst_port, bytes));
                }
                base += 0x10_000;
                t += osiris_sim::SimDuration::from_us(10);
            }
        }
    }
    assert_eq!(delivered.len(), 2);
    delivered.sort_by_key(|&(p, _)| p);
    assert_eq!(delivered[0].0, 20);
    assert_eq!(delivered[0].1, a);
    assert_eq!(delivered[1].0, 21);
    assert_eq!(delivered[1].1, b);
}

#[test]
fn out_of_order_fragments_still_assemble() {
    let (mut host, _asp, mut stack) = rig(true);
    let data: Vec<u8> = (0..50_000).map(|i| (i % 251) as u8).collect();
    let mut pdus = ProtoStack::build_wire_pdus(stack.cfg, 5, 1, 2, &data);
    pdus.reverse(); // worst-case fragment arrival order
    let mut got = None;
    let mut t = SimTime::ZERO;
    let mut base = 0x20_0000u64;
    for p in &pdus {
        if let RxVerdict::Deliver { data, .. } = deliver(&mut host, &mut stack, base, p, t) {
            let mut bytes = Vec::new();
            for seg in data.segs() {
                bytes.extend_from_slice(host.phys.read(seg.addr, seg.len as usize));
            }
            got = Some(bytes);
        }
        base += 0x10_000;
        t += osiris_sim::SimDuration::from_us(3);
    }
    assert_eq!(got.expect("delivered"), data);
    assert_eq!(stack.stats().dropped, 0);
}

#[test]
fn junk_pdu_is_dropped_not_crashed() {
    let (mut host, _asp, mut stack) = rig(false);
    let junk = vec![0xFFu8; 4000];
    match deliver(&mut host, &mut stack, 0x30_0000, &junk, SimTime::ZERO) {
        RxVerdict::Drop { reason, descs } => {
            assert_eq!(reason, "bad IP header");
            assert_eq!(descs.len(), 1, "buffers returned for recycling");
        }
        other => panic!("junk must be dropped, got {other:?}"),
    }
    assert_eq!(stack.stats().dropped, 1);
}

#[test]
fn truncated_fragment_fails_length_check() {
    let (mut host, _asp, mut stack) = rig(false);
    let data = vec![1u8; 1000];
    let mut pdus = ProtoStack::build_wire_pdus(stack.cfg, 6, 1, 2, &data);
    // Chop the tail off the single fragment: UDP length disagrees.
    let p = &mut pdus[0];
    p.truncate(p.len() - 100);
    match deliver(&mut host, &mut stack, 0x40_0000, p, SimTime::ZERO) {
        RxVerdict::Drop { reason, .. } => assert_eq!(reason, "UDP length mismatch"),
        other => panic!("expected drop, got {other:?}"),
    }
}

#[test]
fn header_overhead_is_what_design_says() {
    // One datagram: UDP header + one IP header per fragment.
    let cfg = ProtoConfig::paper_default();
    let payload = vec![0u8; 100_000];
    let pdus = ProtoStack::build_wire_pdus(cfg, 9, 1, 2, &payload);
    let wire_total: usize = pdus.iter().map(|p| p.len()).sum();
    let expect = payload.len() + 12 + pdus.len() * IP_HEADER_BYTES;
    assert_eq!(wire_total, expect);
}
