//! Workspace root crate for the OSIRIS reproduction.
//!
//! Hosts the runnable examples (`examples/`) and the cross-crate
//! integration and property tests (`tests/`). The library surface simply
//! re-exports the [`osiris`] facade; depend on `osiris` directly in real
//! projects.

pub use osiris;
