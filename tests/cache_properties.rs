//! Property tests for the data-cache model — the §2.3 substrate. The
//! invariants: an incoherent cache may serve stale bytes but only ever
//! bytes that *were* at that address before a DMA; invalidation always
//! restores truth; a coherent cache never serves stale bytes at all.
//!
//! Requires the `proptest-tests` feature (and its dev-dependencies,
//! which offline builds cannot fetch — see the manifest note).
#![cfg(feature = "proptest-tests")]

use proptest::prelude::*;

use osiris::mem::{CacheSpec, DataCache, PhysAddr, PhysMemory};

#[derive(Debug, Clone)]
enum Op {
    CpuWrite { at: u16, val: u8, len: u8 },
    DmaWrite { at: u16, val: u8, len: u8 },
    Invalidate { at: u16, len: u8 },
    Read { at: u16, len: u8 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u16>(), any::<u8>(), 1u8..64).prop_map(|(at, val, len)| Op::CpuWrite {
            at,
            val,
            len
        }),
        (any::<u16>(), any::<u8>(), 1u8..64).prop_map(|(at, val, len)| Op::DmaWrite {
            at,
            val,
            len
        }),
        (any::<u16>(), 1u8..64).prop_map(|(at, len)| Op::Invalidate { at, len }),
        (any::<u16>(), 1u8..64).prop_map(|(at, len)| Op::Read { at, len }),
    ]
}

/// A shadow model: `truth` is memory contents; `cpu_view` is what the CPU
/// would see (tracks CPU writes and *observed* reads, never DMA directly).
fn run_ops(coherent: bool, ops: &[Op]) {
    let spec = CacheSpec {
        size: 1024,
        line_size: 16,
        coherent_dma: coherent,
    };
    let mut cache = DataCache::new(spec);
    let mut mem = PhysMemory::new(1 << 16, 4096);
    // Shadow of every byte-version ever present at each address.
    let mut history: Vec<Vec<u8>> = (0..(1 << 16)).map(|_| vec![0u8]).collect();

    for op in ops {
        match *op {
            Op::CpuWrite { at, val, len } => {
                let at = (at as usize) % ((1 << 16) - 64);
                let data = vec![val; len as usize];
                cache.write(&mut mem, PhysAddr(at as u64), &data);
                for i in 0..len as usize {
                    history[at + i].push(val);
                }
            }
            Op::DmaWrite { at, val, len } => {
                let at = (at as usize) % ((1 << 16) - 64);
                let data = vec![val; len as usize];
                cache.dma_write(&mut mem, PhysAddr(at as u64), &data);
                for i in 0..len as usize {
                    history[at + i].push(val);
                }
            }
            Op::Invalidate { at, len } => {
                let at = (at as usize) % ((1 << 16) - 64);
                cache.invalidate(PhysAddr(at as u64), len as usize);
            }
            Op::Read { at, len } => {
                let at = (at as usize) % ((1 << 16) - 64);
                let mut buf = vec![0u8; len as usize];
                let acc = cache.read(&mem, PhysAddr(at as u64), &mut buf);
                for (i, &b) in buf.iter().enumerate() {
                    // Every observed byte must be SOME historical value of
                    // that address — the cache can be stale, never wild.
                    assert!(
                        history[at + i].contains(&b),
                        "byte at {} was never {b}",
                        at + i
                    );
                    if coherent {
                        // A coherent cache serves only the current value.
                        assert_eq!(b, *history[at + i].last().unwrap());
                    }
                }
                if coherent {
                    assert_eq!(acc.stale_bytes, 0, "coherent cache can't be stale");
                }
            }
        }
    }

    // Final invariant: after a full invalidation, reads equal memory.
    cache.invalidate_all();
    let mut buf = vec![0u8; 4096];
    let acc = cache.read(&mem, PhysAddr(0), &mut buf);
    assert_eq!(acc.stale_bytes, 0);
    assert_eq!(&buf[..], mem.read(PhysAddr(0), 4096));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn incoherent_cache_serves_only_historical_bytes(
        ops in proptest::collection::vec(op_strategy(), 1..120)
    ) {
        run_ops(false, &ops);
    }

    #[test]
    fn coherent_cache_is_never_stale(
        ops in proptest::collection::vec(op_strategy(), 1..120)
    ) {
        run_ops(true, &ops);
    }

    /// Invalidation cost equals the word count of the covered lines,
    /// resident or not (the §2.3 per-word price).
    #[test]
    fn invalidation_cost_is_word_exact(at in any::<u16>(), len in 1usize..4096) {
        let spec = CacheSpec { size: 1024, line_size: 16, coherent_dma: false };
        let mut cache = DataCache::new(spec);
        let at = at as u64;
        let words = cache.invalidate(PhysAddr(at), len);
        let first = at / 16;
        let last = (at + len as u64 - 1) / 16;
        prop_assert_eq!(words, (last - first + 1) * 4);
    }
}
