//! §3.1 end to end: early demultiplexing picks a *cached fbuf* as the
//! reassembly buffer, the PDU lands in it via DMA, and delivery to the
//! application domain is a cheap mapping transfer instead of a copy.

use osiris::atm::sar::{FramingMode, SegmentUnit, Segmenter};
use osiris::atm::Vci;
use osiris::board::descriptor::Descriptor;
use osiris::board::dpram::DpramLayout;
use osiris::board::rx::{RxConfig, RxProcessor};
use osiris::fbuf::{FbufAllocator, FbufCosts, FbufSource};
use osiris::host::machine::{HostMachine, MachineSpec};
use osiris::mem::PhysAddr;
use osiris::sim::{SimDuration, SimTime};

const BUF: u32 = 16 * 1024;

struct Rig {
    host: HostMachine,
    rx: RxProcessor,
    fbufs: FbufAllocator,
}

fn rig() -> Rig {
    let host = HostMachine::boot(MachineSpec::ds5000_200(), 31);
    let rx = RxProcessor::new(
        RxConfig {
            buffer_bytes: BUF,
            ..RxConfig::paper_default()
        },
        DpramLayout::paper_default(),
    );
    let costs = FbufCosts::for_machine(&host);
    let fbufs = FbufAllocator::new(costs, PhysAddr(0x40_0000), BUF, 16);
    Rig { host, rx, fbufs }
}

/// The driver's per-PDU buffer provisioning: take an fbuf for the path
/// (cached if the path is hot) and queue it as a receive buffer.
fn stock_free_ring(rig: &mut Rig, path: u32, vci: Vci) -> FbufSource {
    let (fb, src) = rig.fbufs.alloc_for_path(path).expect("fbuf available");
    rig.rx
        .free_ring_mut(0)
        .push(Descriptor::tx(fb.addr, fb.len, vci, false))
        .unwrap();
    src
}

fn receive_pdu(rig: &mut Rig, vci: Vci, data: &[u8]) -> Descriptor {
    let cells = Segmenter {
        framing: FramingMode::EndOfPdu,
        unit: SegmentUnit::Pdu,
    }
    .segment(vci, &[data]);
    let mut t = SimTime::ZERO;
    let mut desc = None;
    for c in &cells {
        let out = rig.rx.receive_cell(
            t,
            0,
            c,
            &mut rig.host.mem_sys,
            &mut rig.host.cache,
            &mut rig.host.phys,
        );
        for (_, _, d) in out.pushed {
            if d.eop {
                desc = Some(d);
            }
        }
        t += SimDuration::from_ns(700);
    }
    desc.expect("PDU delivered")
}

#[test]
fn first_pdu_uses_uncached_fbuf_then_path_warms_up() {
    let mut r = rig();
    let path = 7u32;
    let vci = Vci(70);

    // Cold path: the driver falls back to the uncached pool (the board
    // "uses a buffer from the queue of uncached fbufs").
    let src = stock_free_ring(&mut r, path, vci);
    assert_eq!(src, FbufSource::Uncached);
    let data: Vec<u8> = (0..5000).map(|i| (i % 241) as u8).collect();
    let desc = receive_pdu(&mut r, vci, &data);
    assert_eq!(r.host.phys.read(desc.addr, data.len()), &data[..]);

    // Deliver to the app domain: first transfer pays the mapping...
    let mut fb = osiris::fbuf::Fbuf {
        id: osiris::fbuf::FbufId(0),
        addr: desc.addr,
        len: BUF,
        cached_for: None,
    };
    let g1 = r.fbufs.transfer(SimTime::ZERO, &mut r.host, &mut fb, path);
    let cold = g1.finish.since(g1.start);
    // ...and the buffer is now cached for the path.
    r.fbufs.release(fb);
    let src = stock_free_ring(&mut r, path, vci);
    assert_eq!(src, FbufSource::Cached, "warm path must hit the fbuf cache");

    // Warm delivery is an order of magnitude cheaper.
    let data2 = vec![9u8; 3000];
    let desc2 = receive_pdu(&mut r, vci, &data2);
    let mut fb2 = osiris::fbuf::Fbuf {
        id: osiris::fbuf::FbufId(1),
        addr: desc2.addr,
        len: BUF,
        cached_for: Some(path),
    };
    let g2 = r.fbufs.transfer(SimTime::ZERO, &mut r.host, &mut fb2, path);
    let warm = g2.finish.since(g2.start);
    assert!(
        cold.as_ps() >= 10 * warm.as_ps(),
        "order of magnitude: cold {cold} vs warm {warm}"
    );
    assert_eq!(r.host.phys.read(desc2.addr, data2.len()), &data2[..]);
}

#[test]
fn sixteen_paths_stay_cached_the_seventeenth_evicts() {
    let mut r = rig();
    // Warm 16 paths (transfer once each).
    for path in 0..16u32 {
        let (mut fb, _) = r.fbufs.alloc_for_path(path).unwrap();
        r.fbufs.transfer(SimTime::ZERO, &mut r.host, &mut fb, path);
        r.fbufs.release(fb);
    }
    for path in 0..16u32 {
        let (fb, src) = r.fbufs.alloc_for_path(path).expect("pool");
        assert_eq!(src, FbufSource::Cached, "path {path}");
        r.fbufs.release(fb);
    }
    // A 17th path shows up: its buffer is one recycled from another
    // path's traffic (path 0's cached queue), re-mapped for path 16 by
    // the transfer. Releasing it caches the 17th path and evicts the LRU.
    let (mut fb, src) = r.fbufs.alloc_for_path(0).expect("path 0 is cached");
    assert_eq!(src, FbufSource::Cached);
    r.fbufs.transfer(SimTime::ZERO, &mut r.host, &mut fb, 16);
    r.fbufs.release(fb);
    assert_eq!(r.fbufs.stats().evictions, 1, "the 17th path evicts the LRU");
    // The evicted path's next allocation falls back to the uncached pool.
    let (_, src) = r
        .fbufs
        .alloc_for_path(1)
        .expect("pool refilled by eviction");
    assert_eq!(src, FbufSource::Uncached);
}
