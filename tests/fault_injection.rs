//! Fault injection across the full stack: corrupted cells must never
//! reach an application, and stale caches must never corrupt a
//! checksummed delivery.

use osiris::atm::sar::ReassemblyMode;
use osiris::config::{TestbedConfig, TouchMode};
use osiris::sim::faults::{LaneOutage, PointFault, PointFaultKind};
use osiris::sim::{FaultPlan, SimDuration, SimTime, Simulation};
use osiris::testbed::{Event, NodeId, Testbed};
use osiris::Scenario;

/// Runs a ping-pong testbed until `pings` round trips complete or the
/// budget is exhausted; returns the finished testbed.
fn run_pings(cfg: TestbedConfig) -> Testbed {
    let tb = Testbed::new_pair(cfg);
    let mut sim = Simulation::new(tb);
    sim.queue
        .push(SimTime::ZERO, Event::AppSend { host: NodeId(0) });
    loop {
        if sim.model.done || sim.now() > SimTime::from_secs(30) {
            break;
        }
        if !sim.step() {
            break;
        }
    }
    sim.model
}

/// Like [`run_pings`], but keeps stepping after the budget completes so
/// stragglers drain — in-flight acks, armed retransmit timers, pending
/// reap sweeps. Buffer-conservation checks need the *quiesced* testbed:
/// right at `done` a retransmitted PDU can still hold receive buffers.
fn run_pings_to_quiescence(cfg: TestbedConfig) -> Testbed {
    let tb = Testbed::new_pair(cfg);
    let mut sim = Simulation::new(tb);
    sim.queue
        .push(SimTime::ZERO, Event::AppSend { host: NodeId(0) });
    loop {
        if sim.model.done || sim.now() > SimTime::from_secs(30) {
            break;
        }
        if !sim.step() {
            break;
        }
    }
    // Retransmit chains terminate (ack or give-up) and reap sweeps cap
    // themselves, so the queue provably drains.
    sim.run_until(SimTime::from_secs(60));
    sim.model
}

#[test]
fn corrupted_cells_are_dropped_by_the_board_crc() {
    // Corrupt ~2 % of cells; every corrupted PDU must be caught by the
    // per-PDU CRC and recycled on the host, never delivered.
    let mut cfg = TestbedConfig::ds5000_200_udp();
    cfg.msg_size = 4096;
    cfg.messages = 30;
    cfg.skew.corrupt_prob = 0.02;
    cfg.skew.seed = 1234;
    let tb = run_pings(cfg);
    // The experiment may stall (a lost ping is never retransmitted — UDP!)
    // but nothing corrupt may have been delivered.
    assert_eq!(
        tb.verify_failures, 0,
        "corrupt data must never reach the app"
    );
    let corrupted: u64 = tb.links().iter().map(|l| l.cells_corrupted()).sum();
    assert!(corrupted > 0, "fault injection must have fired");
    let err_pdus: u64 = tb.nodes.iter().map(|n| n.driver.stats().err_pdus).sum();
    let crc_failed: u64 = tb.nodes.iter().map(|n| n.rx.stats().pdus_crc_failed).sum();
    assert!(crc_failed > 0, "the AAL CRC must have caught something");
    assert_eq!(
        err_pdus, crc_failed,
        "every flagged PDU is recycled by the driver"
    );
}

#[test]
fn clean_run_has_no_crc_failures() {
    let mut cfg = TestbedConfig::ds5000_200_udp();
    cfg.msg_size = 4096;
    cfg.messages = 10;
    let tb = run_pings(cfg);
    assert!(tb.done);
    assert_eq!(tb.verify_failures, 0);
    for n in &tb.nodes {
        assert_eq!(n.rx.stats().pdus_crc_failed, 0);
        assert_eq!(n.driver.stats().err_pdus, 0);
    }
}

#[test]
fn checksummed_transfers_survive_and_verify() {
    let mut cfg = TestbedConfig::ds5000_200_udp();
    cfg.msg_size = 8192;
    cfg.messages = 6;
    cfg.udp_checksum = true;
    cfg.touch = TouchMode::WritePerMessage;
    let tb = run_pings(cfg);
    assert!(tb.done);
    assert_eq!(tb.verify_failures, 0);
    for n in &tb.nodes {
        assert_eq!(n.stack.stats().dropped, 0, "no false checksum failures");
    }
}

#[test]
fn interrupt_accounting_is_conserved() {
    let mut cfg = TestbedConfig::ds5000_200_udp();
    cfg.msg_size = 2048;
    cfg.messages = 8;
    let tb = run_pings(cfg);
    for n in &tb.nodes {
        let asserted = n.rx.interrupt_stats().rx_interrupts;
        let taken = n.host.interrupts_taken();
        // Every asserted receive interrupt is fielded (transmit wakeups
        // would add to `taken`, but these runs never fill the ring).
        assert_eq!(asserted, taken, "asserted {asserted} vs taken {taken}");
    }
}

/// Property-style sweep: under *any* seeded [`FaultPlan`] — random
/// drops, random bit corruption, deterministic point faults and a lane
/// outage — reliable mode must (a) converge, (b) deliver every payload
/// byte-exact, and (c) return every receive buffer to the free ring
/// once the run quiesces. Plain seed loop rather than proptest: the
/// fault streams are already pseudo-random functions of the seed.
#[test]
fn reliable_mode_survives_arbitrary_fault_plans() {
    for seed in [1u64, 7, 42, 1994] {
        let mut cfg = TestbedConfig::ds5000_200_udp();
        cfg.msg_size = 4096;
        cfg.messages = 8;
        cfg.udp_checksum = true;
        cfg.verify_data = true;
        cfg.reliable = true;
        cfg.reassembly_timeout = Some(SimDuration::from_us(1000));
        cfg.sim.faults = FaultPlan {
            lane_drop_prob: vec![1e-3; 4],
            lane_corrupt_prob: vec![1e-3; 4],
            point_faults: vec![
                PointFault {
                    lane: 0,
                    nth: 2,
                    kind: PointFaultKind::Drop,
                },
                PointFault {
                    lane: 1,
                    nth: 5,
                    kind: PointFaultKind::Corrupt,
                },
            ],
            outages: vec![LaneOutage {
                lane: 2,
                from: SimTime::from_us(500),
                until: SimTime::from_us(1500),
            }],
            remap_on_outage: true,
            switch_max_queue_cells: None,
            seed,
        };
        let tb = run_pings_to_quiescence(cfg);
        assert!(tb.done, "seed {seed}: reliable run must converge");
        assert_eq!(
            tb.verify_failures, 0,
            "seed {seed}: every delivered payload must be byte-exact"
        );
        let hit: u64 = tb
            .links()
            .iter()
            .map(|l| l.cells_dropped() + l.cells_corrupted())
            .sum();
        assert!(hit > 0, "seed {seed}: the fault plan must have fired");
        for (i, n) in tb.nodes.iter().enumerate() {
            assert_eq!(
                n.rx.free_ring(n.driver.page).len() as usize,
                tb.cfg.rx_buffers,
                "seed {seed}: node {i} leaked receive buffers"
            );
        }
    }
}

/// Graceful stripe degradation: a lane that goes dark mid-run is
/// remapped onto a live neighbour, and because the stripe preserves the
/// *logical* lane, four-way reassembly absorbs the timing shift with
/// zero loss — no retransmission machinery needed.
#[test]
fn lane_outage_with_remap_degrades_gracefully() {
    let mut cfg = TestbedConfig::ds5000_200_udp();
    cfg.msg_size = 8000;
    cfg.messages = 10;
    cfg.reassembly = ReassemblyMode::FourWay { lanes: 4 };
    cfg.sim.faults = FaultPlan {
        outages: vec![LaneOutage {
            lane: 2,
            from: SimTime::from_us(200),
            until: SimTime::from_us(1200),
        }],
        remap_on_outage: true,
        ..FaultPlan::default()
    };
    let tb = run_pings(cfg);
    assert!(tb.done, "remap must keep the connection alive");
    assert_eq!(tb.verify_failures, 0);
    let remapped: u64 = tb.links().iter().map(|l| l.cells_remapped()).sum();
    assert!(remapped > 0, "the outage window must have remapped traffic");
    let dropped: u64 = tb.links().iter().map(|l| l.cells_dropped()).sum();
    assert_eq!(dropped, 0, "remap is loss-free");
    for n in &tb.nodes {
        assert_eq!(
            n.rx.stats().pdus_crc_failed,
            0,
            "logical-lane remap must be invisible to reassembly"
        );
    }
}

/// Bounded switch output queues under fan-in: two senders overload one
/// receiver port block, the switch sheds the overflow (counted), and
/// reliable mode recovers every shed message.
#[test]
fn switch_overflow_is_counted_and_recovered() {
    let mut cfg = TestbedConfig::ds5000_200_udp();
    cfg.msg_size = 8 * 1024;
    cfg.messages = 3; // per sender
    cfg.reassembly = ReassemblyMode::FourWay { lanes: 4 };
    cfg.reliable = true;
    cfg.reassembly_timeout = Some(SimDuration::from_us(1000));
    cfg.sim.faults.switch_max_queue_cells = Some(12);
    let mut sim = Scenario::Incast { senders: 2 }.launch(cfg);
    loop {
        if sim.model.done || sim.now() > SimTime::from_secs(30) {
            break;
        }
        if !sim.step() {
            break;
        }
    }
    let m = &sim.model;
    assert!(m.done, "retransmission must recover the shed messages");
    assert_eq!(m.verify_failures, 0);
    let snap = m.snapshot();
    assert!(
        snap.counter("fabric.switch.overflow_dropped") > 0,
        "the 2:1 fan-in must overflow a 12-cell output queue"
    );
    assert_eq!(snap.counter("node2.stack.delivered"), 6, "2 senders x 3");
}

#[test]
fn buffers_are_conserved_across_a_long_run() {
    let mut cfg = TestbedConfig::ds5000_200_udp();
    cfg.msg_size = 50_000;
    cfg.messages = 10;
    let tb = run_pings(cfg);
    assert!(tb.done);
    for n in &tb.nodes {
        // All provisioned buffers are back in the free ring once the run
        // quiesces: none leaked in reassembly or delivery paths.
        assert_eq!(
            n.rx.free_ring(n.driver.page).len() as usize,
            tb.cfg.rx_buffers,
            "receive buffers must be conserved"
        );
    }
}
