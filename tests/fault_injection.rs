//! Fault injection across the full stack: corrupted cells must never
//! reach an application, and stale caches must never corrupt a
//! checksummed delivery.

use osiris::config::{TestbedConfig, TouchMode};
use osiris::sim::{SimTime, Simulation};
use osiris::testbed::{Event, NodeId, Testbed};

/// Runs a ping-pong testbed until `pings` round trips complete or the
/// budget is exhausted; returns the finished testbed.
fn run_pings(cfg: TestbedConfig) -> Testbed {
    let tb = Testbed::new_pair(cfg);
    let mut sim = Simulation::new(tb);
    sim.queue
        .push(SimTime::ZERO, Event::AppSend { host: NodeId(0) });
    loop {
        if sim.model.done || sim.now() > SimTime::from_secs(30) {
            break;
        }
        if !sim.step() {
            break;
        }
    }
    sim.model
}

#[test]
fn corrupted_cells_are_dropped_by_the_board_crc() {
    // Corrupt ~2 % of cells; every corrupted PDU must be caught by the
    // per-PDU CRC and recycled on the host, never delivered.
    let mut cfg = TestbedConfig::ds5000_200_udp();
    cfg.msg_size = 4096;
    cfg.messages = 30;
    cfg.skew.corrupt_prob = 0.02;
    cfg.skew.seed = 1234;
    let tb = run_pings(cfg);
    // The experiment may stall (a lost ping is never retransmitted — UDP!)
    // but nothing corrupt may have been delivered.
    assert_eq!(
        tb.verify_failures, 0,
        "corrupt data must never reach the app"
    );
    let corrupted: u64 = tb.links().iter().map(|l| l.cells_corrupted()).sum();
    assert!(corrupted > 0, "fault injection must have fired");
    let err_pdus: u64 = tb.nodes.iter().map(|n| n.driver.stats().err_pdus).sum();
    let crc_failed: u64 = tb.nodes.iter().map(|n| n.rx.stats().pdus_crc_failed).sum();
    assert!(crc_failed > 0, "the AAL CRC must have caught something");
    assert_eq!(
        err_pdus, crc_failed,
        "every flagged PDU is recycled by the driver"
    );
}

#[test]
fn clean_run_has_no_crc_failures() {
    let mut cfg = TestbedConfig::ds5000_200_udp();
    cfg.msg_size = 4096;
    cfg.messages = 10;
    let tb = run_pings(cfg);
    assert!(tb.done);
    assert_eq!(tb.verify_failures, 0);
    for n in &tb.nodes {
        assert_eq!(n.rx.stats().pdus_crc_failed, 0);
        assert_eq!(n.driver.stats().err_pdus, 0);
    }
}

#[test]
fn checksummed_transfers_survive_and_verify() {
    let mut cfg = TestbedConfig::ds5000_200_udp();
    cfg.msg_size = 8192;
    cfg.messages = 6;
    cfg.udp_checksum = true;
    cfg.touch = TouchMode::WritePerMessage;
    let tb = run_pings(cfg);
    assert!(tb.done);
    assert_eq!(tb.verify_failures, 0);
    for n in &tb.nodes {
        assert_eq!(n.stack.stats().dropped, 0, "no false checksum failures");
    }
}

#[test]
fn interrupt_accounting_is_conserved() {
    let mut cfg = TestbedConfig::ds5000_200_udp();
    cfg.msg_size = 2048;
    cfg.messages = 8;
    let tb = run_pings(cfg);
    for n in &tb.nodes {
        let asserted = n.rx.interrupt_stats().rx_interrupts;
        let taken = n.host.interrupts_taken();
        // Every asserted receive interrupt is fielded (transmit wakeups
        // would add to `taken`, but these runs never fill the ring).
        assert_eq!(asserted, taken, "asserted {asserted} vs taken {taken}");
    }
}

#[test]
fn buffers_are_conserved_across_a_long_run() {
    let mut cfg = TestbedConfig::ds5000_200_udp();
    cfg.msg_size = 50_000;
    cfg.messages = 10;
    let tb = run_pings(cfg);
    assert!(tb.done);
    for n in &tb.nodes {
        // All provisioned buffers are back in the free ring once the run
        // quiesces: none leaked in reassembly or delivery paths.
        assert_eq!(
            n.rx.free_ring(n.driver.page).len() as usize,
            tb.cfg.rx_buffers,
            "receive buffers must be conserved"
        );
    }
}
