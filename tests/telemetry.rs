//! The telemetry plane's contract, end to end:
//!
//! 1. **Sampling is passive.** Turning `sample_every` on produces a
//!    byte-identical semantic snapshot and goodput line to sampling
//!    off, at every shard count — the sampler only reads the registry
//!    between dispatches (sequentially) or below the round's global
//!    minimum (sharded), never perturbing the event history.
//! 2. **Per-window deltas are exact.** A counter series' window deltas
//!    sum to exactly `total - base`, regardless of ring eviction, so
//!    rates integrate back to the final registry totals.
//! 3. **Dumps round-trip.** `SeriesDump::to_json` → `Json::parse` →
//!    `SeriesDump::from_json` is the identity.

use osiris::config::TestbedConfig;
use osiris::shard::RunOutcome;
use osiris::sim::{Json, SeriesDump, SeriesKind, SimDuration};
use osiris::Scenario;

/// A quick switched incast with enough concurrency to exercise every
/// tracked series: switch queues, slab pressure, all event types.
fn incast_cfg() -> TestbedConfig {
    let mut cfg = TestbedConfig::ds5000_200_udp();
    cfg.msg_size = 2 * 1024;
    cfg.messages = 1;
    cfg.reassembly = osiris::atm::sar::ReassemblyMode::FourWay { lanes: 4 };
    cfg
}

fn run(cfg: &TestbedConfig, shards: usize, sample_every: Option<SimDuration>) -> RunOutcome {
    let mut cfg = cfg.clone();
    cfg.sim.shards = shards;
    cfg.sim.sample_every = sample_every;
    let out = Scenario::Incast { senders: 16 }.run(cfg);
    assert!(out.done, "incast under {shards} shard(s) completed");
    assert_eq!(out.verify_failures, 0);
    out
}

#[test]
fn sampling_is_invisible_at_every_shard_count() {
    let cfg = incast_cfg();
    let reference = run(&cfg, 1, None);
    let ref_json = reference.semantic_snapshot().to_json().render_pretty();
    let ref_line = reference.goodput_line();
    assert!(reference.series.is_none(), "sampling off returns no series");
    for shards in [1usize, 2, 4] {
        let sampled = run(&cfg, shards, Some(SimDuration::from_us(100)));
        assert_eq!(
            ref_json,
            sampled.semantic_snapshot().to_json().render_pretty(),
            "sampling on at {shards} shard(s) changed the semantic snapshot"
        );
        assert_eq!(
            ref_line,
            sampled.goodput_line(),
            "sampling on at {shards} shard(s) changed the goodput line"
        );
        assert_eq!(reference.scheduled, sampled.scheduled);
        assert_eq!(reference.dispatched, sampled.dispatched);
        assert_eq!(reference.last_event_time, sampled.last_event_time);
        let series = sampled.series.expect("sampling on returns series");
        assert!(series.samples > 0, "grid produced samples");
        assert!(!series.series.is_empty());
    }
}

#[test]
fn counter_window_deltas_sum_to_registry_totals() {
    let cfg = incast_cfg();
    let out = run(&cfg, 1, Some(SimDuration::from_us(50)));
    let dump = out.series.as_ref().expect("series collected");

    // The synthetic dispatch series accounts for every dispatched event.
    let d = dump
        .series_named("events_dispatched")
        .expect("dispatch series");
    assert_eq!(d.sum, out.dispatched as f64);
    assert_eq!(d.total - d.base, out.dispatched as f64);

    // Every tracked counter's deltas integrate to its final registry
    // value (minus what construction had already counted), eviction or
    // not — the running aggregates cover evicted windows too.
    for s in dump.series.iter().filter(|s| s.kind == SeriesKind::Counter) {
        assert_eq!(
            s.sum,
            s.total - s.base,
            "series {}: window deltas must sum to total - base",
            s.name
        );
        if s.name == "engine.events.scheduled" {
            assert_eq!(s.total, out.scheduled as f64);
        }
        if let Some(final_v) = out.snapshot.counters.get(&s.name) {
            assert_eq!(s.total, *final_v as f64, "series {} total", s.name);
        }
    }

    // The dispatch mix sums to the total dispatch count.
    let mix: f64 = dump
        .series
        .iter()
        .filter(|s| s.name.starts_with("engine.dispatch."))
        .map(|s| s.sum)
        .sum();
    assert_eq!(mix, out.dispatched as f64, "per-type dispatch mix");
}

#[test]
fn sharded_series_are_prefixed_and_cover_all_shards() {
    let cfg = incast_cfg();
    let shards = 4;
    let out = run(&cfg, shards, Some(SimDuration::from_us(100)));
    let dump = out.series.as_ref().expect("series collected");
    for k in 0..shards {
        let name = format!("shard{k}.events_dispatched");
        let s = dump.series_named(&name).expect("per-shard dispatch series");
        assert_eq!(
            s.sum, out.per_shard[k].events_dispatched as f64,
            "{name} must integrate to the shard's dispatch count"
        );
    }
    let total: f64 = (0..shards)
        .map(|k| {
            dump.series_named(&format!("shard{k}.events_dispatched"))
                .unwrap()
                .sum
        })
        .sum();
    assert_eq!(total, out.dispatched as f64);
}

#[test]
fn series_dump_round_trips_through_json() {
    let cfg = incast_cfg();
    let out = run(&cfg, 2, Some(SimDuration::from_us(100)));
    let dump = out.series.expect("series collected");
    let rendered = dump.to_json().render_pretty();
    let parsed = Json::parse(&rendered).expect("rendered dump parses");
    let back = SeriesDump::from_json(&parsed).expect("dump deserializes");
    assert_eq!(dump, back, "SeriesDump JSON round-trip must be identity");
}

#[test]
fn shard_imbalance_is_deterministic_and_sane() {
    let cfg = incast_cfg();
    let seq = run(&cfg, 1, None);
    assert_eq!(
        seq.shard_imbalance(),
        1.0,
        "one shard is perfectly balanced"
    );
    let a = run(&cfg, 4, None);
    let b = run(&cfg, 4, None);
    assert_eq!(a.shard_imbalance(), b.shard_imbalance(), "deterministic");
    assert!(a.shard_imbalance() >= 1.0, "max/mean is at least 1");
}
