//! The sharded engine's contract, end to end: running any scenario
//! under N shards produces **byte-identical** semantic results to the
//! single-threaded engine — same registry snapshot (minus the
//! partition-scoped cell-arena placement metrics), same goodput line,
//! same event counts. Not statistically close: byte-equal.
//!
//! This is the system-level companion to the ordering property tests in
//! `crates/sim/src/pdes.rs`: those prove the `(time, PushKey)` order is
//! partition-invariant in isolation; this one proves the whole stack —
//! per-node RNG and fault streams, striped links, the stateful switch,
//! reassembly, retransmission, metering — observes no difference.

use osiris::config::TestbedConfig;
use osiris::shard::RunOutcome;
use osiris::Scenario;

fn run(scenario: Scenario, mut cfg: TestbedConfig, shards: usize) -> RunOutcome {
    cfg.sim.shards = shards;
    let out = scenario.run(cfg);
    assert!(out.done, "{scenario:?} under {shards} shard(s) completed");
    assert_eq!(
        out.verify_failures, 0,
        "{scenario:?} under {shards} shard(s): payload verify"
    );
    out
}

/// Asserts shards ∈ {2, 4} byte-match the single-threaded reference
/// for one (scenario, cfg) point.
fn assert_equivalent(scenario: Scenario, cfg: TestbedConfig) {
    let reference = run(scenario, cfg.clone(), 1);
    let ref_json = reference.semantic_snapshot().to_json().render_pretty();
    let ref_line = reference.goodput_line();
    for shards in [2usize, 4] {
        let sharded = run(scenario, cfg.clone(), shards);
        assert_eq!(
            ref_json,
            sharded.semantic_snapshot().to_json().render_pretty(),
            "{scenario:?}: semantic snapshot diverged at {shards} shards \
             (seed {})",
            cfg.seed,
        );
        assert_eq!(
            ref_line,
            sharded.goodput_line(),
            "{scenario:?}: goodput line diverged at {shards} shards"
        );
        assert_eq!(reference.scheduled, sharded.scheduled, "{scenario:?}");
        assert_eq!(reference.dispatched, sharded.dispatched, "{scenario:?}");
        assert_eq!(reference.delivered, sharded.delivered, "{scenario:?}");
        assert_eq!(
            reference.last_event_time, sharded.last_event_time,
            "{scenario:?}"
        );
    }
}

#[test]
fn pair_is_byte_identical_across_shard_counts() {
    for seed in [1u64, 42] {
        let mut cfg = TestbedConfig::ds5000_200_udp();
        cfg.msg_size = 8 * 1024;
        cfg.messages = 4;
        cfg.seed = seed;
        assert_equivalent(Scenario::Pair, cfg);
    }
}

#[test]
fn switched_pair_is_byte_identical_across_shard_counts() {
    // The stateful-switch variant of Pair: routing now happens at
    // arrival time on the receiver's shard.
    for seed in [1u64, 42] {
        let mut cfg = TestbedConfig::ds5000_200_udp();
        cfg.msg_size = 8 * 1024;
        cfg.messages = 4;
        cfg.seed = seed;
        cfg.switched_fabric = true;
        cfg.reassembly = osiris::atm::sar::ReassemblyMode::FourWay { lanes: 4 };
        assert_equivalent(Scenario::Pair, cfg);
    }
}

#[test]
fn incast_is_byte_identical_across_shard_counts() {
    // 16 senders onto one receiver: the receiver's shard carries the
    // switch fan-in state while sender shards race ahead.
    for seed in [1u64, 42] {
        let mut cfg = TestbedConfig::ds5000_200_udp();
        cfg.msg_size = 4 * 1024;
        cfg.messages = 2;
        cfg.seed = seed;
        cfg.reassembly = osiris::atm::sar::ReassemblyMode::FourWay { lanes: 4 };
        assert_equivalent(Scenario::Incast { senders: 16 }, cfg);
    }
}

#[test]
fn fanout_is_byte_identical_across_shard_counts() {
    // One source spraying 8 receivers over raw ATM: cross-shard
    // traffic in the opposite direction from incast.
    for seed in [1u64, 42] {
        let mut cfg = TestbedConfig::ds5000_200_atm();
        cfg.msg_size = 4 * 1024;
        cfg.messages = 3;
        cfg.seed = seed;
        assert_equivalent(Scenario::FanOut { receivers: 8 }, cfg);
    }
}

#[test]
fn many_pairs_is_byte_identical_across_shard_counts() {
    // The scale bench's workload: round-robin sharding splits every
    // source from its sink, so all payload traffic crosses shards.
    let mut cfg = TestbedConfig::ds5000_200_udp();
    cfg.msg_size = 4 * 1024;
    cfg.messages = 2;
    cfg.reassembly = osiris::atm::sar::ReassemblyMode::FourWay { lanes: 4 };
    assert_equivalent(Scenario::ManyPairs { pairs: 4 }, cfg);
}

#[test]
fn incast_64_sharded_matches_single_threaded() {
    // The acceptance point from the issue: a 64-sender switched incast,
    // sharded, must byte-match the single-threaded run.
    let mut cfg = TestbedConfig::ds5000_200_udp();
    cfg.msg_size = 2 * 1024;
    cfg.messages = 1;
    cfg.reassembly = osiris::atm::sar::ReassemblyMode::FourWay { lanes: 4 };
    // 64 concurrent PDUs overrun even a maxed-out 63-buffer free ring;
    // reliable mode reaps and retransmits whatever the overrun sheds,
    // which doubles as a recovery-path equivalence check.
    cfg.rx_buffers = 63;
    cfg.reliable = true;
    cfg.reassembly_timeout = Some(osiris::sim::SimDuration::from_us(1000));
    let scenario = Scenario::Incast { senders: 64 };
    let reference = run(scenario, cfg.clone(), 1);
    let sharded = run(scenario, cfg, 2);
    assert_eq!(reference.delivered, 64, "one message per sender");
    assert_eq!(
        reference.semantic_snapshot().to_json().render_pretty(),
        sharded.semantic_snapshot().to_json().render_pretty(),
        "64-sender incast snapshot diverged under sharding"
    );
    assert_eq!(reference.goodput_line(), sharded.goodput_line());
}

#[test]
fn faulty_pair_is_byte_identical_across_shard_counts() {
    // Loss + retransmission under sharding: the per-node fault streams
    // are pure functions of (plan.seed, node), so drops and corruptions
    // land on the same cells however the nodes are partitioned.
    let mut cfg = TestbedConfig::ds5000_200_udp();
    cfg.msg_size = 8 * 1024;
    cfg.messages = 4;
    cfg.reliable = true;
    cfg.reassembly_timeout = Some(osiris::sim::SimDuration::from_us(1000));
    cfg.sim.faults.lane_drop_prob = vec![1e-3; 4];
    cfg.sim.faults.lane_corrupt_prob = vec![1e-4; 4];
    cfg.sim.faults.seed = 7;
    assert_equivalent(Scenario::Pair, cfg);
}
