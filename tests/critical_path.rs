//! Per-PDU causal-tracing invariants.
//!
//! Whatever the topology (Pair, Incast, FanOut), the layer (raw ATM or
//! UDP/IP), and the message size (single- or multi-fragment), every
//! traced PDU must satisfy:
//!
//! 1. **Exact attribution**: the critical-path stage durations sum to
//!    the PDU's observed end-to-end latency, picosecond for picosecond
//!    (gaps are attributed to the stage the PDU was waiting on).
//! 2. **Resource exclusivity**: spans of one PDU on one track (one
//!    resource: a DMA engine, a lane, the protocol CPU) never overlap —
//!    touching endpoints are allowed.

use std::collections::HashMap;

use osiris::config::TestbedConfig;
use osiris::scenario::Scenario;
use osiris::sim::{CriticalPath, Stage, TimelineEvent};
use osiris::Testbed;

fn run(scenario: Scenario, cfg: TestbedConfig) -> Testbed {
    let mut sim = scenario.launch(cfg);
    sim.model.timeline.set_enabled(true);
    assert!(sim.run_while(|m| !m.done), "scenario did not complete");
    assert_eq!(sim.model.verify_failures, 0);
    sim.model
}

/// The two tracing invariants, checked over every traced PDU in a run.
fn assert_trace_invariants(tb: &Testbed, min_paths: usize) {
    assert_eq!(
        tb.timeline.dropped(),
        0,
        "timeline evicted spans; grow timeline_capacity for this workload"
    );
    let paths = CriticalPath::analyze_all(&tb.timeline);
    assert!(
        paths.len() >= min_paths,
        "expected at least {min_paths} traced PDUs, got {}",
        paths.len()
    );
    for p in &paths {
        // 1. Stages tile the end-to-end window exactly.
        assert_eq!(
            p.stage_sum().as_ps(),
            p.total().as_ps(),
            "ctx {}: stage durations must sum to e2e latency\n{}",
            p.ctx,
            p.render_stage_table()
        );
        // 2. Per-resource exclusivity.
        let mut by_track: HashMap<&str, Vec<&TimelineEvent>> = HashMap::new();
        for s in &p.spans {
            by_track.entry(s.track.as_str()).or_default().push(s);
        }
        for (track, mut spans) in by_track {
            spans.sort_by_key(|s| (s.at, s.end()));
            for w in spans.windows(2) {
                assert!(
                    w[0].end() <= w[1].at,
                    "ctx {}: spans overlap on {track}: {:?}[{}..{}] vs {:?}[{}..{}]",
                    p.ctx,
                    w[0].name,
                    w[0].at,
                    w[0].end(),
                    w[1].name,
                    w[1].at,
                    w[1].end()
                );
            }
        }
    }
}

#[test]
fn pair_udp_single_fragment() {
    let mut cfg = TestbedConfig::ds5000_200_udp();
    cfg.msg_size = 1000;
    cfg.messages = 3;
    let tb = run(Scenario::Pair, cfg);
    // 3 pings + 3 pongs, each one datagram.
    assert_trace_invariants(&tb, 6);
}

#[test]
fn pair_udp_multi_fragment() {
    let mut cfg = TestbedConfig::ds5000_200_udp();
    cfg.msg_size = 50_000; // 4 fragments per datagram
    cfg.messages = 2;
    let tb = run(Scenario::Pair, cfg);
    assert_trace_invariants(&tb, 4);
}

#[test]
fn pair_raw_atm() {
    let mut cfg = TestbedConfig::ds5000_200_atm();
    cfg.msg_size = 4096;
    cfg.messages = 3;
    let tb = run(Scenario::Pair, cfg);
    assert_trace_invariants(&tb, 6);
}

#[test]
fn pair_switched_fabric_has_switch_stage() {
    let mut cfg = TestbedConfig::ds5000_200_udp();
    cfg.switched_fabric = true;
    cfg.msg_size = 8192;
    cfg.messages = 2;
    let tb = run(Scenario::Pair, cfg);
    assert_trace_invariants(&tb, 4);
    let paths = CriticalPath::analyze_all(&tb.timeline);
    assert!(
        paths
            .iter()
            .any(|p| p.stage(Stage::SwitchQueue).as_ps() > 0),
        "a switched pair must attribute some time to switch queueing"
    );
}

#[test]
fn incast_fans_in_with_exact_attribution() {
    let mut cfg = TestbedConfig::ds5000_200_udp();
    cfg.msg_size = 8192;
    cfg.messages = 2;
    cfg.reassembly = osiris::atm::sar::ReassemblyMode::FourWay { lanes: 4 };
    let tb = run(Scenario::Incast { senders: 3 }, cfg);
    // 3 senders × 2 messages.
    assert_trace_invariants(&tb, 6);
}

#[test]
fn fanout_sprays_with_exact_attribution() {
    let mut cfg = TestbedConfig::ds5000_200_atm();
    cfg.msg_size = 4096;
    cfg.messages = 4;
    let tb = run(Scenario::FanOut { receivers: 2 }, cfg);
    assert_trace_invariants(&tb, 4);
}

/// The acceptance walk: one Pair datagram's span set names every layer
/// of the path — send, DMA, lanes, reassembly, interrupt wait, driver,
/// delivery — and the big stages all get non-zero attribution.
#[test]
fn one_pdu_crosses_every_layer() {
    let mut cfg = TestbedConfig::ds5000_200_udp();
    cfg.msg_size = 16 * 1024;
    cfg.messages = 1;
    let tb = run(Scenario::Pair, cfg);
    let paths = CriticalPath::analyze_all(&tb.timeline);
    // The ping datagram from node 0.
    let p = paths
        .iter()
        .find(|p| p.ctx.host == 0)
        .expect("traced ping PDU");
    let names: std::collections::HashSet<&str> = p.spans.iter().map(|s| s.name.as_str()).collect();
    for needle in [
        "app.send",
        "proto.tx",
        "driver.tx",
        "fw.tx",
        "dma.tx",
        "lane.tx",
        "dma.rx",
        "sar.reasm",
        "intr.wait",
        "driver.rx",
        "proto.rx",
        "app.deliver",
    ] {
        assert!(
            names.contains(needle),
            "span tree missing {needle:?}; have {names:?}\n{}",
            p.render_tree()
        );
    }
    for stage in [
        Stage::ProtocolCpu,
        Stage::DmaTransfer,
        Stage::Wire,
        Stage::InterruptDelay,
    ] {
        assert!(
            p.stage(stage).as_ps() > 0,
            "stage {stage} got zero attribution\n{}",
            p.render_stage_table()
        );
    }
}
