//! The §3.1 regime: "each of the potentially hundreds of paths
//! (connections) on a given host is bound to a VCI". The receive
//! processor must keep per-VCI reassembly state and demultiplex early,
//! even when cells from many connections interleave arbitrarily.

use osiris::atm::sar::{FramingMode, SegmentUnit, Segmenter};
use osiris::atm::Vci;
use osiris::board::descriptor::Descriptor;
use osiris::board::dpram::DpramLayout;
use osiris::board::rx::{RxConfig, RxProcessor};
use osiris::host::machine::{HostMachine, MachineSpec};
use osiris::mem::PhysAddr;
use osiris::sim::{SimDuration, SimRng, SimTime};

#[test]
fn sixty_interleaved_connections_reassemble_independently() {
    let mut host = HostMachine::boot(MachineSpec::ds5000_200(), 5);
    let mut rx = RxProcessor::new(
        RxConfig {
            buffer_bytes: 4096,
            ..RxConfig::paper_default()
        },
        DpramLayout::paper_default(),
    );
    // One shared kernel page with a deep free ring (cell interleaving
    // means many PDUs are in flight at once).
    for i in 0..60u64 {
        rx.free_ring_mut(0)
            .push(Descriptor::tx(
                PhysAddr(0x10_0000 + i * 0x1000),
                4096,
                Vci(0),
                false,
            ))
            .unwrap();
    }

    // 60 connections, each sending one distinct message.
    let n_conn = 60u16;
    let seg = Segmenter {
        framing: FramingMode::EndOfPdu,
        unit: SegmentUnit::Pdu,
    };
    let mut streams: Vec<(usize, Vec<osiris::atm::Cell>)> = (0..n_conn)
        .map(|c| {
            let data: Vec<u8> = (0..800)
                .map(|i| ((i as u32 * (c as u32 + 3)) % 251) as u8)
                .collect();
            (
                0usize,
                seg.segment(Vci(100 + c), &data.chunks(800).collect::<Vec<_>>()),
            )
        })
        .collect();

    // Interleave: repeatedly pick a random stream and deliver its next cell
    // (per-VCI cell order preserved — VCIs don't reorder on one link).
    let mut rng = SimRng::new(99);
    let mut t = SimTime::ZERO;
    let mut completed = 0u64;
    let total_cells: usize = streams.iter().map(|(_, cells)| cells.len()).sum();
    for _ in 0..total_cells {
        // Pick a stream with cells remaining.
        let live: Vec<usize> = (0..streams.len())
            .filter(|&i| streams[i].0 < streams[i].1.len())
            .collect();
        let pick = live[rng.gen_range(live.len() as u64) as usize];
        let (pos, cells) = &mut streams[pick];
        let cell = cells[*pos].clone();
        *pos += 1;
        let out = rx.receive_cell(
            t,
            0,
            &cell,
            &mut host.mem_sys,
            &mut host.cache,
            &mut host.phys,
        );
        if let Some(info) = out.completed {
            assert!(info.crc_ok, "VCI {:?} failed CRC", info.vci);
            assert!(!info.dropped);
            assert_eq!(info.len, 800);
            completed += 1;
        }
        t += SimDuration::from_ns(700);
    }
    assert_eq!(
        completed, n_conn as u64,
        "every connection's message completes"
    );
    assert_eq!(rx.stats().pdus_delivered, n_conn as u64);
    assert_eq!(rx.stats().cells_rejected, 0);

    // Each delivered buffer holds exactly its own connection's bytes.
    let mut seen_vcis = std::collections::HashSet::new();
    let ring = rx.rx_ring_mut(0);
    while let Some((desc, _)) = ring.pop() {
        assert!(desc.eop);
        assert!(!desc.err);
        seen_vcis.insert(desc.vci);
        let got = host.phys.read(desc.addr, desc.len as usize);
        let c = desc.vci.0 - 100;
        let expect: Vec<u8> = (0..800)
            .map(|i| ((i as u32 * (c as u32 + 3)) % 251) as u8)
            .collect();
        assert_eq!(got, &expect[..], "VCI {} data intact", desc.vci.0);
    }
    assert_eq!(seen_vcis.len(), n_conn as usize);
}

#[test]
fn early_demux_spreads_connections_over_pages() {
    // 15 ADC-style pages, 15 connections, one per page; interleaved cells
    // land on the right receive ring with no cross-talk.
    let mut host = HostMachine::boot(MachineSpec::dec3000_600(), 6);
    let mut rx = RxProcessor::new(
        RxConfig {
            buffer_bytes: 4096,
            ..RxConfig::paper_default()
        },
        DpramLayout::paper_default(),
    );
    for page in 1..16usize {
        rx.bind_vci(Vci(200 + page as u16), page);
        for b in 0..2u64 {
            rx.free_ring_mut(page)
                .push(Descriptor::tx(
                    PhysAddr(0x20_0000 + (page as u64 * 8 + b) * 0x1000),
                    4096,
                    Vci(0),
                    false,
                ))
                .unwrap();
        }
    }
    let seg = Segmenter {
        framing: FramingMode::EndOfPdu,
        unit: SegmentUnit::Pdu,
    };
    let mut all: Vec<(usize, osiris::atm::Cell)> = Vec::new();
    for page in 1..16usize {
        let data = vec![page as u8; 500];
        for (i, c) in seg
            .segment(Vci(200 + page as u16), &[&data])
            .into_iter()
            .enumerate()
        {
            all.push((i, c));
        }
    }
    // Round-robin across connections (cells of one VCI stay ordered).
    all.sort_by_key(|&(i, _)| i);
    let mut t = SimTime::ZERO;
    for (_, cell) in &all {
        rx.receive_cell(
            t,
            0,
            cell,
            &mut host.mem_sys,
            &mut host.cache,
            &mut host.phys,
        );
        t += SimDuration::from_ns(700);
    }
    for page in 1..16usize {
        assert_eq!(
            rx.rx_ring(page).len(),
            1,
            "page {page} must hold exactly its PDU"
        );
        let desc = *rx.rx_ring(page).peek().unwrap();
        assert_eq!(desc.vci, Vci(200 + page as u16));
        assert_eq!(host.phys.read(desc.addr, 500), &vec![page as u8; 500][..]);
    }
    assert_eq!(rx.rx_ring(0).len(), 0, "nothing leaks onto the kernel page");
}
