//! Real-thread validation of the §2.1.1 queue discipline.
//!
//! The paper's claim: a one-reader-one-writer ring needs only atomic
//! 32-bit loads and stores. On a modern memory model that means one
//! release/acquire pair per side; `SpscRing` encodes exactly that, and
//! these tests hammer it from real threads via crossbeam scopes.
//!
//! Requires the `proptest-tests` feature (and its dev-dependencies,
//! which offline builds cannot fetch — see the manifest note).
#![cfg(feature = "proptest-tests")]

use crossbeam::thread;
use osiris::board::spsc::SpscRing;

#[test]
fn spsc_ring_is_linearizable_across_threads() {
    const N: u64 = 20_000;
    for ring_size in [2u32, 3, 4, 64, 1024] {
        let ring = SpscRing::<u64>::new(ring_size);
        thread::scope(|s| {
            s.spawn(|_| {
                let mut i = 0u64;
                while i < N {
                    if ring.push(i).is_ok() {
                        i += 1;
                    } else {
                        std::thread::yield_now();
                    }
                }
            });
            s.spawn(|_| {
                let mut expected = 0u64;
                while expected < N {
                    match ring.pop() {
                        Some(v) => {
                            assert_eq!(v, expected, "FIFO violation at size {ring_size}");
                            expected += 1;
                        }
                        None => std::thread::yield_now(),
                    }
                }
            });
        })
        .unwrap();
        assert!(ring.is_empty());
    }
}

#[test]
fn spsc_ring_transfers_owned_payloads_safely() {
    // Boxed payloads: a missing release/acquire would show up as a torn
    // or dangling pointer under sanitizers; here we verify content.
    const N: u64 = 10_000;
    let ring = SpscRing::<Box<[u8; 44]>>::new(16);
    thread::scope(|s| {
        s.spawn(|_| {
            let mut i = 0u64;
            while i < N {
                let cell = Box::new([(i % 251) as u8; 44]);
                if ring.push(cell).is_ok() {
                    i += 1;
                } else {
                    std::thread::yield_now();
                }
            }
        });
        s.spawn(|_| {
            let mut seen = 0u64;
            while seen < N {
                if let Some(cell) = ring.pop() {
                    assert_eq!(cell[0], (seen % 251) as u8);
                    assert_eq!(cell[43], (seen % 251) as u8);
                    seen += 1;
                } else {
                    std::thread::yield_now();
                }
            }
        });
    })
    .unwrap();
}

#[test]
fn spsc_ring_survives_bursty_producers() {
    // Producer sends in bursts with pauses; consumer drains eagerly. The
    // empty/full transitions (the interrupt-suppression edges of §2.1.2)
    // get exercised thousands of times.
    const BURSTS: u64 = 200;
    const PER_BURST: u64 = 50;
    let ring = SpscRing::<u64>::new(32);
    thread::scope(|s| {
        s.spawn(|_| {
            let mut v = 0u64;
            for _ in 0..BURSTS {
                for _ in 0..PER_BURST {
                    while ring.push(v).is_err() {
                        std::thread::yield_now();
                    }
                    v += 1;
                }
                std::thread::yield_now();
            }
        });
        s.spawn(|_| {
            let mut expected = 0u64;
            while expected < BURSTS * PER_BURST {
                if let Some(v) = ring.pop() {
                    assert_eq!(v, expected);
                    expected += 1;
                } else {
                    std::thread::yield_now();
                }
            }
        });
    })
    .unwrap();
}
