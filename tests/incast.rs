//! End-to-end incast: N sender nodes stream onto one receiver through
//! the switched fabric — the first workload class the node/fabric split
//! unlocks, and the shape where the paper's free-ring and
//! interrupt-suppression lessons actually bite.

use osiris::config::TestbedConfig;
use osiris::experiments::incast_throughput;
use osiris::sim::SimTime;
use osiris::Scenario;

#[test]
fn four_sender_incast_completes_through_the_switch() {
    let mut cfg = TestbedConfig::ds5000_200_udp();
    cfg.msg_size = 8 * 1024;
    cfg.messages = 4; // per sender
    cfg.reassembly = osiris::atm::sar::ReassemblyMode::FourWay { lanes: 4 };
    let senders = 4;
    let mut sim = Scenario::Incast { senders }.launch(cfg);
    loop {
        if sim.model.done || sim.now() > SimTime::from_secs(30) {
            break;
        }
        if !sim.step() {
            break;
        }
    }
    let m = &sim.model;
    assert!(m.done, "incast must run to completion");
    assert_eq!(m.verify_failures, 0, "every delivery verifies");
    assert_eq!(m.nodes.len(), senders + 1);

    let snap = m.snapshot();
    // Every sender transmitted on its own VCI; the receiver delivered all
    // of it up the stack.
    for s in 0..senders {
        assert!(
            snap.counter(&format!("node{s}.board.tx.cells_sent")) > 0,
            "sender {s} must have transmitted"
        );
    }
    assert_eq!(
        snap.counter(&format!("node{senders}.stack.delivered")),
        (senders as u64) * 4,
        "receiver must deliver every message from every sender"
    );

    // The switch's per-port queues are registry-visible: the receiver's
    // port block carried every cell, and the N-to-1 fan-in queued.
    let lanes = 4;
    let mut cells = 0u64;
    let mut queue_ps = 0u64;
    for p in senders * lanes..(senders + 1) * lanes {
        cells += snap.counter(&format!("fabric.switch.port{p}.cells"));
        queue_ps += snap.counter(&format!("fabric.switch.port{p}.queueing_ps"));
    }
    assert!(cells > 0, "receiver port block must carry the traffic");
    assert!(
        queue_ps > 0,
        "four concurrent senders must queue at the fan-in"
    );
    assert_eq!(snap.counter("fabric.switch.unrouted"), 0, "no cell dropped");
}

#[test]
fn fragmenting_incast_recovers_by_retransmission() {
    // Regression: messages bigger than the IP MTU used to be rejected up
    // front ("incast requires single-fragment messages") because the
    // trailing short fragment loses the four-way lane race under fan-in
    // queueing. The guard is gone: incast_throughput now turns on
    // reliable mode and the reassembly timeout, and whatever the lane
    // races shed is reaped and retransmitted until every datagram lands.
    let mut cfg = TestbedConfig::ds5000_200_udp();
    cfg.msg_size = 20 * 1024; // two IP fragments per message
    cfg.messages = 3;
    cfg.warmup = 1;
    let r = incast_throughput(&cfg, 2);
    assert_eq!(
        r.delivered, 6,
        "every fragmented message must eventually be delivered"
    );
    assert!(r.mbps > 0.0, "goodput must be nonzero");
}

#[test]
fn incast_report_scales_with_senders() {
    // Single-fragment messages: four-way framing over the uncoordinated
    // switch requires every PDU to span all lanes (see incast_throughput).
    let mut cfg = TestbedConfig::ds5000_200_udp();
    cfg.msg_size = 12 * 1024;
    cfg.messages = 3;
    cfg.warmup = 1;
    let one = incast_throughput(&cfg, 1);
    let four = incast_throughput(&cfg, 4);
    assert_eq!(one.senders, 1);
    assert_eq!(four.senders, 4);
    assert_eq!(four.delivered, 12, "4 senders x 3 messages");
    assert!(four.switch_cells > one.switch_cells);
    assert!(
        four.max_port_queueing_us >= one.max_port_queueing_us,
        "fan-in must not reduce port queueing"
    );
    assert_eq!(one.dropped_pdus + four.dropped_pdus, 0);
}
