//! Cross-crate integration tests: the full two-host testbed, end to end.

use osiris::atm::sar::ReassemblyMode;
use osiris::atm::stripe::SkewConfig;
use osiris::board::dma::DmaMode;
use osiris::config::{DataPath, Layer, TestbedConfig, TouchMode};
use osiris::experiments::{receive_throughput, round_trip_latency, transmit_throughput};
use osiris::sim::SimDuration;

fn base() -> TestbedConfig {
    let mut cfg = TestbedConfig::ds5000_200_udp();
    cfg.messages = 5;
    cfg
}

#[test]
fn latency_grows_monotonically_with_size() {
    let mut last = 0.0;
    for size in [1u64, 512, 4096, 20_000] {
        let mut cfg = base();
        cfg.msg_size = size;
        cfg.touch = TouchMode::WritePerMessage;
        let lat = round_trip_latency(&cfg);
        assert!(
            lat.mean_us() > last,
            "latency must grow with size: {} us at {size} B after {last}",
            lat.mean_us()
        );
        last = lat.mean_us();
    }
}

#[test]
fn udp_costs_more_than_raw_atm_everywhere() {
    for size in [1u64, 4096] {
        let mut udp = base();
        udp.msg_size = size;
        let mut atm = base();
        atm.layer = Layer::RawAtm;
        atm.msg_size = size;
        assert!(round_trip_latency(&udp).mean_us() > round_trip_latency(&atm).mean_us());
    }
}

#[test]
fn multi_fragment_udp_messages_survive_the_full_path() {
    // 100 KB = 7 fragments; exercises IP reassembly over real buffers.
    let mut cfg = base();
    cfg.msg_size = 100_000;
    cfg.messages = 3;
    let lat = round_trip_latency(&cfg); // asserts verify_failures == 0 inside
    assert_eq!(lat.count(), 3);
}

#[test]
fn raw_atm_large_pdus_chain_buffers() {
    let mut cfg = base();
    cfg.layer = Layer::RawAtm;
    cfg.msg_size = 60_000; // 4 receive buffers per PDU
    cfg.messages = 3;
    let lat = round_trip_latency(&cfg);
    assert_eq!(lat.count(), 3);
}

#[test]
fn adc_equals_kernel_but_user_pays_crossings() {
    let run = |path| {
        let mut cfg = base();
        cfg.msg_size = 2048;
        cfg.data_path = path;
        round_trip_latency(&cfg).mean_us()
    };
    let kernel = run(DataPath::Kernel);
    let adc = run(DataPath::Adc);
    let user = run(DataPath::UserViaKernel);
    assert!(
        (adc - kernel).abs() / kernel < 0.05,
        "ADC {adc} vs kernel {kernel}"
    );
    // Two crossings per message, four per round trip: 4 × 20 us = 80 us.
    assert!(user > kernel + 60.0, "user {user} vs kernel {kernel}");
}

#[test]
fn double_cell_dma_beats_single_cell_on_receive() {
    let mut cfg = base();
    cfg.msg_size = 32 * 1024;
    cfg.messages = 12;
    cfg.warmup = 2;
    let single = receive_throughput(&cfg).mbps;
    cfg.rx_dma = DmaMode::DoubleCell;
    let double = receive_throughput(&cfg).mbps;
    assert!(double > single * 1.05, "double {double} vs single {single}");
}

#[test]
fn alpha_receive_approaches_link_payload_rate() {
    let mut cfg = TestbedConfig::dec3000_600_udp();
    cfg.msg_size = 128 * 1024;
    cfg.messages = 10;
    cfg.warmup = 2;
    cfg.rx_dma = DmaMode::DoubleCell;
    let mbps = receive_throughput(&cfg).mbps;
    assert!(
        (450.0..560.0).contains(&mbps),
        "expected near 516 Mbps, got {mbps}"
    );
}

#[test]
fn transmit_is_bounded_by_single_cell_ceiling() {
    for mk in [
        TestbedConfig::ds5000_200_udp,
        TestbedConfig::dec3000_600_udp,
    ] {
        let mut cfg = mk();
        cfg.msg_size = 64 * 1024;
        cfg.messages = 10;
        cfg.warmup = 2;
        let mbps = transmit_throughput(&cfg);
        assert!(
            mbps < 367.0,
            "{}: tx {mbps} exceeds the 367 Mbps ceiling",
            cfg.machine.name
        );
        assert!(
            mbps > 150.0,
            "{}: tx {mbps} implausibly slow",
            cfg.machine.name
        );
    }
}

#[test]
fn skewed_stripes_work_with_both_strategies() {
    for reassembly in [
        ReassemblyMode::FourWay { lanes: 4 },
        ReassemblyMode::SeqNum { max_cells: 4096 },
    ] {
        let mut cfg = base();
        cfg.msg_size = 10_000;
        cfg.messages = 4;
        cfg.skew = SkewConfig::mux_skew(5);
        cfg.reassembly = reassembly;
        let lat = round_trip_latency(&cfg);
        assert_eq!(lat.count(), 4, "{reassembly:?} under skew");
    }
}

#[test]
fn switch_queueing_jitter_is_survivable_with_fourway() {
    let mut cfg = base();
    cfg.msg_size = 6000;
    cfg.messages = 4;
    cfg.skew = SkewConfig::switch_queueing(11, SimDuration::from_us(15));
    cfg.reassembly = ReassemblyMode::FourWay { lanes: 4 };
    let lat = round_trip_latency(&cfg);
    assert_eq!(lat.count(), 4);
}

#[test]
fn experiments_are_deterministic_per_seed() {
    let mut cfg = base();
    cfg.msg_size = 3000;
    let a = round_trip_latency(&cfg);
    let b = round_trip_latency(&cfg);
    assert_eq!(
        a.mean_us().to_bits(),
        b.mean_us().to_bits(),
        "same seed, same result"
    );
    let mut cfg2 = cfg.clone();
    cfg2.seed = 777;
    // A different seed changes frame placement; results stay in family but
    // need not be bit-identical.
    let c = round_trip_latency(&cfg2);
    assert!((c.mean_us() - a.mean_us()).abs() / a.mean_us() < 0.2);
}

#[test]
fn eager_invalidation_costs_throughput_on_the_decstation() {
    use osiris::host::driver::CacheStrategy;
    let mut cfg = base();
    cfg.msg_size = 32 * 1024;
    cfg.messages = 12;
    cfg.warmup = 2;
    let lazy = receive_throughput(&cfg).mbps;
    cfg.cache_strategy = CacheStrategy::Eager;
    let eager = receive_throughput(&cfg).mbps;
    assert!(lazy > eager * 1.15, "lazy {lazy} vs eager {eager}");
}
