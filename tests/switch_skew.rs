//! End-to-end §2.6 scenario with a real switch in the path: the third
//! skew source (per-port queueing) produced by actual cross traffic, not
//! by injected jitter.

use osiris::atm::sar::{FramingMode, Reassembler, ReassemblyMode, SegmentUnit, Segmenter};
use osiris::atm::switch::{Switch, SwitchSpec};
use osiris::atm::Vci;
use osiris::sim::{SimDuration, SimTime};

/// Sends `data` as one striped PDU through four switch ports (one per
/// lane), with `cross` cells of background load on port 1, and returns
/// the arrivals in departure order.
fn via_switch(
    data: &[u8],
    cross: u64,
    coordinated: bool,
    framing: FramingMode,
) -> Vec<(usize, osiris::atm::Cell)> {
    let spec = if coordinated {
        SwitchSpec::coordinated()
    } else {
        SwitchSpec::sts3c_16port()
    };
    let mut sw = Switch::new(spec);
    // Lane l travels VCI 10+l → port l (the stripe crosses distinct ports).
    for lane in 0..4u16 {
        sw.route(Vci(10 + lane), lane as usize);
    }
    sw.set_group(vec![0, 1, 2, 3]);
    sw.background_load(SimTime::ZERO, 1, cross);

    let cells = Segmenter {
        framing,
        unit: SegmentUnit::Pdu,
    }
    .segment(Vci(0), &[data]);
    let mut arrivals = Vec::new();
    for (i, mut cell) in cells.into_iter().enumerate() {
        let lane = i % 4;
        // Tag the cell with its lane's transit VCI for routing, restoring
        // the logical VCI on arrival (the boards agree on the stripe).
        cell.header.vci = Vci(10 + lane as u16);
        let t = SimTime::ZERO + SimDuration::from_ns(700 * i as u64); // wire pacing
        let (port, departure) = sw.forward(t, &cell).expect("routed");
        cell.header.vci = Vci(0);
        arrivals.push((departure, port, cell));
    }
    arrivals.sort_by_key(|&(at, _, _)| at);
    arrivals.into_iter().map(|(_, lane, c)| (lane, c)).collect()
}

fn reassemble(arrivals: &[(usize, osiris::atm::Cell)]) -> Option<(bool, Vec<u8>)> {
    let mut r = Reassembler::new(ReassemblyMode::FourWay { lanes: 4 }, 1 << 20, true);
    let mut out = None;
    for (lane, cell) in arrivals {
        out = r.receive(*lane, cell).unwrap().completed.or(out);
    }
    out.map(|p| (p.crc_ok, p.data.unwrap_or_default()))
}

#[test]
fn switch_cross_traffic_skews_but_fourway_recovers() {
    let data: Vec<u8> = (0..44 * 25).map(|i| (i % 247) as u8).collect();
    let arrivals = via_switch(&data, 30, false, FramingMode::FourWay { lanes: 4 });
    // The loaded port's cells arrive late: global order is broken.
    let lanes_in_order: Vec<usize> = arrivals.iter().map(|&(l, _)| l).collect();
    let round_robin: Vec<usize> = (0..arrivals.len()).map(|i| i % 4).collect();
    assert_ne!(
        lanes_in_order, round_robin,
        "cross traffic must reorder the stripe"
    );
    // Four-way reassembly still yields the exact bytes.
    let (crc_ok, got) = reassemble(&arrivals).expect("completes");
    assert!(crc_ok);
    assert_eq!(got, data);
}

#[test]
fn unloaded_switch_preserves_stripe_order() {
    let data = vec![7u8; 44 * 12];
    let arrivals = via_switch(&data, 0, false, FramingMode::FourWay { lanes: 4 });
    let lanes: Vec<usize> = arrivals.iter().map(|&(l, _)| l).collect();
    let round_robin: Vec<usize> = (0..arrivals.len()).map(|i| i % 4).collect();
    assert_eq!(lanes, round_robin);
    let (crc_ok, got) = reassemble(&arrivals).unwrap();
    assert!(crc_ok);
    assert_eq!(got, data);
}

#[test]
fn coordinated_switch_removes_skew_at_a_price() {
    let data = vec![3u8; 44 * 16];
    // Same cross traffic, coordinated port group, plain AAL5 framing —
    // exactly the world the coordinated switch was meant to preserve.
    let arrivals = via_switch(&data, 30, true, FramingMode::EndOfPdu);
    let lanes: Vec<usize> = arrivals.iter().map(|&(l, _)| l).collect();
    let round_robin: Vec<usize> = (0..arrivals.len()).map(|i| i % 4).collect();
    assert_eq!(lanes, round_robin, "coordination must restore global order");
    // Even a naive in-order reassembler now works (the price was paid in
    // delay: every lane waited out the loaded port).
    let mut r = Reassembler::new(ReassemblyMode::InOrder, 1 << 20, true);
    let mut out = None;
    for (_, cell) in &arrivals {
        out = r.receive(0, cell).unwrap().completed.or(out);
    }
    let p = out.expect("completes in order");
    assert!(p.crc_ok);
    assert_eq!(p.data.unwrap(), data);
}
