//! End-to-end §2.6 scenario with a real switch in the path: the third
//! skew source (per-port queueing) produced by actual cross traffic, not
//! by injected jitter.

use osiris::atm::sar::{FramingMode, Reassembler, ReassemblyMode, SegmentUnit, Segmenter};
use osiris::atm::switch::{Switch, SwitchSpec};
use osiris::atm::Vci;
use osiris::sim::{SimDuration, SimTime};

/// Sends `data` as one striped PDU through four switch ports (one per
/// lane), with `cross` cells of background load on port 1, and returns
/// the arrivals in departure order.
fn via_switch(
    data: &[u8],
    cross: u64,
    coordinated: bool,
    framing: FramingMode,
) -> Vec<(usize, osiris::atm::Cell)> {
    let spec = if coordinated {
        SwitchSpec::coordinated()
    } else {
        SwitchSpec::sts3c_16port()
    };
    let mut sw = Switch::new(spec);
    // Lane l travels VCI 10+l → port l (the stripe crosses distinct ports).
    for lane in 0..4u16 {
        sw.route(Vci(10 + lane), lane as usize);
    }
    sw.set_group(vec![0, 1, 2, 3]);
    sw.background_load(SimTime::ZERO, 1, cross);

    let cells = Segmenter {
        framing,
        unit: SegmentUnit::Pdu,
    }
    .segment(Vci(0), &[data]);
    let mut arrivals = Vec::new();
    for (i, mut cell) in cells.into_iter().enumerate() {
        let lane = i % 4;
        // Tag the cell with its lane's transit VCI for routing, restoring
        // the logical VCI on arrival (the boards agree on the stripe).
        cell.header.vci = Vci(10 + lane as u16);
        let t = SimTime::ZERO + SimDuration::from_ns(700 * i as u64); // wire pacing
        let (port, departure) = sw.forward(t, &cell).expect("routed");
        cell.header.vci = Vci(0);
        arrivals.push((departure, port, cell));
    }
    arrivals.sort_by_key(|&(at, _, _)| at);
    arrivals.into_iter().map(|(_, lane, c)| (lane, c)).collect()
}

fn reassemble(arrivals: &[(usize, osiris::atm::Cell)]) -> Option<(bool, Vec<u8>)> {
    let mut r = Reassembler::new(ReassemblyMode::FourWay { lanes: 4 }, 1 << 20, true);
    let mut out = None;
    for (lane, cell) in arrivals {
        out = r.receive(*lane, cell).unwrap().completed.or(out);
    }
    out.map(|p| (p.crc_ok, p.data.unwrap_or_default()))
}

#[test]
fn switch_cross_traffic_skews_but_fourway_recovers() {
    let data: Vec<u8> = (0..44 * 25).map(|i| (i % 247) as u8).collect();
    let arrivals = via_switch(&data, 30, false, FramingMode::FourWay { lanes: 4 });
    // The loaded port's cells arrive late: global order is broken.
    let lanes_in_order: Vec<usize> = arrivals.iter().map(|&(l, _)| l).collect();
    let round_robin: Vec<usize> = (0..arrivals.len()).map(|i| i % 4).collect();
    assert_ne!(
        lanes_in_order, round_robin,
        "cross traffic must reorder the stripe"
    );
    // Four-way reassembly still yields the exact bytes.
    let (crc_ok, got) = reassemble(&arrivals).expect("completes");
    assert!(crc_ok);
    assert_eq!(got, data);
}

#[test]
fn unloaded_switch_preserves_stripe_order() {
    let data = vec![7u8; 44 * 12];
    let arrivals = via_switch(&data, 0, false, FramingMode::FourWay { lanes: 4 });
    let lanes: Vec<usize> = arrivals.iter().map(|&(l, _)| l).collect();
    let round_robin: Vec<usize> = (0..arrivals.len()).map(|i| i % 4).collect();
    assert_eq!(lanes, round_robin);
    let (crc_ok, got) = reassemble(&arrivals).unwrap();
    assert!(crc_ok);
    assert_eq!(got, data);
}

#[test]
fn four_sender_incast_preserves_per_lane_fifo_and_per_vci_reassembly() {
    // Four senders stripe one PDU each, on distinct VCIs, into the SAME
    // receiver port block (ports 0..4) — the incast shape the scenario
    // layer builds. Contention queues cells, but two invariants must
    // survive: each output port serves its cells in offer order (per-lane
    // FIFO), and per-VCI reassembly on the receiver never mixes bytes
    // across VCIs.
    use std::collections::HashMap;

    let mut sw = Switch::new(SwitchSpec::sts3c_16port());
    for s in 0..4u16 {
        sw.route_group(Vci(100 + s), 0, 4);
    }
    let seg = Segmenter {
        framing: FramingMode::FourWay { lanes: 4 },
        unit: SegmentUnit::Pdu,
    };
    // Distinct byte patterns per sender so any interleaving corrupts a CRC
    // or a payload comparison.
    let payloads: Vec<Vec<u8>> = (0..4usize)
        .map(|s| {
            (0..44 * 20)
                .map(|i| ((i * 7 + s * 41) % 249) as u8)
                .collect()
        })
        .collect();

    // Offer cells in global wall-clock order, as concurrent senders would.
    let mut offers = Vec::new();
    for (s, data) in payloads.iter().enumerate() {
        for (i, cell) in seg
            .segment(Vci(100 + s as u16), &[data.as_slice()])
            .into_iter()
            .enumerate()
        {
            let t = SimTime::ZERO + SimDuration::from_ns(700 * i as u64);
            offers.push((t, s, i % 4, cell));
        }
    }
    offers.sort_by_key(|&(t, s, _, _)| (t, s));

    // (port, offer_seq, departure, lane, cell)
    let mut arrivals = Vec::new();
    for (seq, (t, _, lane, cell)) in offers.into_iter().enumerate() {
        let (port, at) = sw.forward_on_lane(t, &cell, lane).expect("routed");
        assert_eq!(port, lane, "stripe lane must map onto its block port");
        arrivals.push((port, seq, at, lane, cell));
    }

    // Per-lane FIFO: on every output port, departures are non-decreasing
    // in offer order.
    for port in 0..4 {
        let deps: Vec<SimTime> = arrivals
            .iter()
            .filter(|a| a.0 == port)
            .map(|a| a.2)
            .collect();
        assert!(!deps.is_empty());
        assert!(
            deps.windows(2).all(|w| w[0] <= w[1]),
            "port {port} reordered cells"
        );
    }
    // Four senders on one port block must actually contend.
    let queued: u64 = (0..4).map(|p| sw.port_stats(p).queueing.as_ps()).sum();
    assert!(queued > 0, "incast must queue at the shared ports");

    // Receiver side: demux by VCI (as the board does) into per-VCI
    // four-way reassemblers, feeding cells in departure order.
    arrivals.sort_by_key(|a| (a.2, a.1));
    let mut reasm: HashMap<Vci, Reassembler> = HashMap::new();
    let mut done: HashMap<Vci, (bool, Vec<u8>)> = HashMap::new();
    for (_, _, _, lane, cell) in &arrivals {
        let vci = cell.header.vci;
        let r = reasm.entry(vci).or_insert_with(|| {
            Reassembler::new(ReassemblyMode::FourWay { lanes: 4 }, 1 << 20, true)
        });
        if let Some(p) = r.receive(*lane, cell).unwrap().completed {
            done.insert(vci, (p.crc_ok, p.data.unwrap_or_default()));
        }
    }
    assert_eq!(done.len(), 4, "every sender's PDU must complete");
    for (s, data) in payloads.iter().enumerate() {
        let (crc_ok, got) = &done[&Vci(100 + s as u16)];
        assert!(crc_ok, "VCI {} CRC failed: streams interleaved", 100 + s);
        assert_eq!(got, data, "VCI {} payload mixed across VCIs", 100 + s);
    }
}

#[test]
fn coordinated_switch_removes_skew_at_a_price() {
    let data = vec![3u8; 44 * 16];
    // Same cross traffic, coordinated port group, plain AAL5 framing —
    // exactly the world the coordinated switch was meant to preserve.
    let arrivals = via_switch(&data, 30, true, FramingMode::EndOfPdu);
    let lanes: Vec<usize> = arrivals.iter().map(|&(l, _)| l).collect();
    let round_robin: Vec<usize> = (0..arrivals.len()).map(|i| i % 4).collect();
    assert_eq!(lanes, round_robin, "coordination must restore global order");
    // Even a naive in-order reassembler now works (the price was paid in
    // delay: every lane waited out the loaded port).
    let mut r = Reassembler::new(ReassemblyMode::InOrder, 1 << 20, true);
    let mut out = None;
    for (_, cell) in &arrivals {
        out = r.receive(0, cell).unwrap().completed.or(out);
    }
    let p = out.expect("completes in order");
    assert!(p.crc_ok);
    assert_eq!(p.data.unwrap(), data);
}
