//! Cross-layer observability invariants: the registry's counters must
//! agree with each other across crate boundaries, because every layer
//! now publishes into the same `osiris-sim::obs` registry.

use osiris::config::{TestbedConfig, TouchMode};
use osiris::sim::{Json, SimTime, Simulation};
use osiris::testbed::{Event, NodeId, Testbed};

/// Runs the Table 1 ping-pong (1 KB UDP/IP on a 5000/200 pair) and
/// returns the finished testbed.
fn run_ping_pong() -> Testbed {
    let mut cfg = TestbedConfig::ds5000_200_udp();
    cfg.msg_size = 1024;
    cfg.messages = 8;
    cfg.touch = TouchMode::WritePerMessage;
    let tb = Testbed::new_pair(cfg);
    let mut sim = Simulation::new(tb);
    sim.queue
        .push(SimTime::ZERO, Event::AppSend { host: NodeId(0) });
    assert!(sim.run_while(|m| !m.done), "ping-pong did not complete");
    assert_eq!(sim.model.verify_failures, 0);
    sim.model
}

#[test]
fn interrupts_taken_equal_raised_minus_suppressed() {
    let tb = run_ping_pong();
    let snap = tb.snapshot();
    for node in ["node0", "node1"] {
        let taken = snap.counter(&format!("{node}.host.interrupts_taken"));
        let raised = snap.counter(&format!("{node}.board.rx.intr_raised"));
        let suppressed = snap.counter(&format!("{node}.board.rx.intr_suppressed"));
        let wakeups = snap.counter(&format!("{node}.board.tx.wakeups"));
        assert!(raised > 0, "{node}: the board must have pushed descriptors");
        assert_eq!(
            wakeups, 0,
            "{node}: a short ping-pong must never fill the transmit ring"
        );
        assert_eq!(
            taken,
            raised - suppressed,
            "{node}: every interrupt the board asserts (raised - suppressed) \
             must be taken by the host, and no others"
        );
    }
}

#[test]
fn bus_words_split_exhaustively_into_dma_and_cpu() {
    let tb = run_ping_pong();
    let snap = tb.snapshot();
    for node in ["node0", "node1"] {
        let words = snap.counter(&format!("{node}.bus.words"));
        let dma = snap.counter(&format!("{node}.bus.dma_words"));
        let cpu = snap.counter(&format!("{node}.bus.cpu_words"));
        assert!(dma > 0, "{node}: cells must have moved by DMA");
        assert!(cpu > 0, "{node}: software must have touched memory");
        assert_eq!(
            words,
            dma + cpu,
            "{node}: every bus word is either a DMA word or a CPU word"
        );
    }
}

#[test]
fn snapshot_json_round_trips() {
    let tb = run_ping_pong();
    let text = tb.snapshot().to_json().render_pretty();
    let doc = Json::parse(&text).expect("snapshot JSON must parse back");
    let cells = doc
        .get("counters")
        .and_then(|c| c.get("node1.board.rx.cells"))
        .and_then(|v| v.as_u64())
        .expect("counter present in JSON");
    assert_eq!(cells, tb.snapshot().counter("node1.board.rx.cells"));
}

#[test]
fn timeline_chrome_export_round_trips() {
    let mut cfg = TestbedConfig::ds5000_200_udp();
    cfg.msg_size = 1024;
    cfg.messages = 1;
    let tb = Testbed::new_pair(cfg);
    tb.timeline.set_enabled(true);
    let mut sim = Simulation::new(tb);
    sim.queue
        .push(SimTime::ZERO, Event::AppSend { host: NodeId(0) });
    assert!(sim.run_while(|m| !m.done));
    let tl = &sim.model.timeline;
    assert!(tl.events().len() > 10, "a traced ping must record events");
    assert_eq!(tl.dropped(), 0, "default capacity must hold one ping");
    // The §4 anatomy spans are present.
    assert!(!tl.spans_named("node1.host", "intr service").is_empty());
    assert!(!tl.spans_named("node1.host", "drain").is_empty());
    // The export parses back and contains one entry per event plus one
    // thread-name metadata record per track.
    let doc = tl.to_chrome_json();
    let text = doc.render_pretty();
    let parsed = Json::parse(&text).expect("chrome trace JSON must parse back");
    assert_eq!(parsed, doc);
    let events = parsed.get("traceEvents").unwrap().items();
    assert!(events.len() > tl.events().len());
}

#[test]
fn trace_ring_capacity_follows_sim_config() {
    let mut cfg = TestbedConfig::ds5000_200_udp();
    cfg.sim.trace_capacity = 8;
    cfg.msg_size = 1024;
    cfg.messages = 2;
    let mut tb = Testbed::new_pair(cfg);
    tb.trace.set_enabled(true);
    let mut sim = Simulation::new(tb);
    sim.queue
        .push(SimTime::ZERO, Event::AppSend { host: NodeId(0) });
    assert!(sim.run_while(|m| !m.done));
    let m = &sim.model;
    assert_eq!(m.trace.capacity(), 8);
    assert_eq!(
        m.trace.records().count(),
        8,
        "ring must be capacity-bounded"
    );
    assert!(m.trace.dropped() > 0);
    // Evictions are registry-visible, never silent.
    assert_eq!(m.snapshot().counter("sim.trace.dropped"), m.trace.dropped());
}

#[test]
fn event_queue_scheduling_is_registry_visible() {
    // Satellite: the simulation engine itself publishes into the same
    // registry as the hardware models. `Scenario::launch` attaches the
    // queue's probe, so `engine.events.scheduled` must track
    // `EventQueue::total_pushed` exactly — including the seed event.
    let mut cfg = TestbedConfig::ds5000_200_udp();
    cfg.msg_size = 1024;
    cfg.messages = 8;
    cfg.touch = TouchMode::WritePerMessage;
    let mut sim = osiris::Scenario::Pair.launch(cfg);
    assert!(sim.run_while(|m| !m.done), "ping-pong did not complete");
    let scheduled = sim.model.snapshot().counter("engine.events.scheduled");
    assert!(scheduled > 0, "the run must have scheduled events");
    assert_eq!(
        scheduled,
        sim.queue.total_pushed(),
        "engine.events.scheduled must mirror EventQueue::total_pushed"
    );
}

#[test]
fn every_layer_publishes_into_one_registry() {
    let tb = run_ping_pong();
    let snap = tb.snapshot();
    // One representative path per crate layer, all in the same snapshot.
    for path in [
        "node0.board.rx.cells",        // board receive half
        "node0.board.tx.cells_sent",   // board transmit half
        "node0.bus.words",             // memory system
        "node0.host.interrupts_taken", // host machine
        "node0.driver.pdus_sent",      // driver
        "node0.stack.delivered",       // protocol stack
        "node0.link.lane0.cells_sent", // striped link
    ] {
        assert!(
            snap.counter(path) > 0,
            "expected activity on {path}; counters: {:?}",
            snap.counters.keys().collect::<Vec<_>>()
        );
    }
}

#[test]
fn sharded_scheduling_and_slab_metrics_merge_correctly() {
    // Satellite: the merged snapshot's `engine.events.scheduled` is the
    // sum of every shard's queue pushes, and the partition-dependent
    // slab metrics are re-scoped per shard with a fabric-level maximum
    // kept under the sequential name.
    let mut cfg = TestbedConfig::ds5000_200_udp();
    cfg.msg_size = 4 * 1024;
    cfg.messages = 2;
    cfg.reassembly = osiris::atm::sar::ReassemblyMode::FourWay { lanes: 4 };
    cfg.sim.shards = 2;
    let out = osiris::Scenario::ManyPairs { pairs: 4 }.run(cfg);
    assert!(out.done, "many-pairs must complete");
    let snap = &out.snapshot;

    // Merged counter == Σ per-shard total_pushed == outcome total.
    let per_shard_sum: u64 = out.per_shard.iter().map(|s| s.events_scheduled).sum();
    assert_eq!(
        snap.counter("engine.events.scheduled"),
        per_shard_sum,
        "merged engine.events.scheduled must equal the per-shard sum"
    );
    assert_eq!(out.scheduled, per_shard_sum);
    assert!(
        out.per_shard.iter().all(|s| s.events_scheduled > 0),
        "round-robin sharding must give every shard work: {:?}",
        out.per_shard
    );

    // Slab placement is per-shard scoped…
    for k in 0..2 {
        assert!(
            snap.gauges
                .contains_key(&format!("shard{k}.cells.slab_high_water")),
            "shard {k} must publish its own slab high-water"
        );
        assert!(
            snap.counters
                .contains_key(&format!("shard{k}.cells.slab_recycled")),
            "shard {k} must publish its own slab recycling"
        );
    }
    // …and the fabric-level gauge is the max across shards.
    let max_hw = (0..2)
        .map(|k| snap.gauge(&format!("shard{k}.cells.slab_high_water")))
        .fold(0.0f64, f64::max);
    assert!(max_hw > 0.0, "cells must have lived in some arena");
    assert_eq!(
        snap.gauge("cells.slab_high_water"),
        max_hw,
        "fabric-level slab high-water must be the per-shard max"
    );
}
