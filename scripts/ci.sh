#!/usr/bin/env bash
# Offline-safe CI gate: format, lint, build, test, and a smoke run.
# Everything here works with zero network access — the workspace has no
# external dependencies by design (see Cargo.toml's proptest-tests note).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test --workspace -q

echo "==> smoke: quickstart example"
cargo run --release -q --example quickstart

echo "==> smoke: incast through the switched fabric"
cargo run --release -q --example incast

echo "==> smoke: Chrome trace export round-trip"
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
cargo run --release -q --example quickstart -- --trace-out "$tmp/trace.json"
test -s "$tmp/trace.json"

echo "CI OK"
