#!/usr/bin/env bash
# Offline-safe CI gate: format, lint, build, test, and a smoke run.
# Everything here works with zero network access — the workspace has no
# external dependencies by design (see Cargo.toml's proptest-tests note).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test --workspace -q

echo "==> smoke: quickstart example"
cargo run --release -q --example quickstart

echo "==> smoke: incast through the switched fabric"
cargo run --release -q --example incast

echo "==> smoke: Chrome trace export round-trip"
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
cargo run --release -q --example quickstart -- --trace-out "$tmp/trace.json"
test -s "$tmp/trace.json"
# A dropped-span export leads with a "partial export" instant; the
# report footer only WARNs, so the gate turns it into a hard failure.
if grep -q '"partial export"' "$tmp/trace.json"; then
  echo "FAIL: trace export was partial (timeline ring dropped spans)" >&2
  exit 1
fi

echo "==> smoke: telemetry plane (sampled incast, series + counter trace)"
# The sequential path writes a series document (archived with the bench
# snapshots) and a Chrome trace with the sampled counter tracks merged
# into the span timeline; the sharded path writes shard-prefixed series.
mkdir -p target/bench
cargo run --release -q --example quickstart -- --sample-every 100us --senders 64 \
  --series-out target/bench/BENCH_series.json --trace-out "$tmp/telemetry.json"
test -s target/bench/BENCH_series.json
grep -q '"ph": "C"' "$tmp/telemetry.json"
if grep -q '"partial export"' "$tmp/telemetry.json"; then
  echo "FAIL: telemetry trace export was partial (timeline ring dropped spans)" >&2
  exit 1
fi
# Ring evictions would silently truncate the series' early windows;
# obs.samples_dropped makes that visible and the gate makes it fatal.
if ! grep -q '"samples_dropped": 0' target/bench/BENCH_series.json; then
  echo "FAIL: telemetry series rings evicted samples (obs.samples_dropped != 0)" >&2
  exit 1
fi
cargo run --release -q --example quickstart -- --sample-every 100us --senders 64 \
  --shards 2 --series-out "$tmp/series_sharded.jsonl"
grep -q '"name":"shard1.events_dispatched"' "$tmp/series_sharded.jsonl"
if ! grep -q '"samples_dropped":0' "$tmp/series_sharded.jsonl"; then
  echo "FAIL: sharded telemetry series rings evicted samples" >&2
  exit 1
fi

echo "==> smoke: bench snapshot + regression gate (fig2 --quick)"
# The simulator is deterministic, so the quick sweep reproduces the
# committed baseline exactly; the gate exists to catch code changes that
# move a headline metric the wrong way. Snapshots land in target/bench
# so the workflow can archive them as artifacts.
mkdir -p target/bench
cargo run --release -q -p osiris-bench --bin fig2 -- --quick --bench-out target/bench/BENCH_fig2.json
test -s target/bench/BENCH_fig2.json
cargo run --release -q -p osiris-bench --bin regress -- \
  crates/bench/baselines/BENCH_fig2.json target/bench/BENCH_fig2.json --threshold 5

echo "==> smoke: loss sweep + regression gate (loss --quick)"
# Fault-plane gate: goodput under seeded cell loss must not sag and the
# recovery tail must not grow. Same determinism argument as fig2.
cargo run --release -q -p osiris-bench --bin loss -- --quick --bench-out target/bench/BENCH_loss.json
test -s target/bench/BENCH_loss.json
cargo run --release -q -p osiris-bench --bin regress -- \
  crates/bench/baselines/BENCH_loss.json target/bench/BENCH_loss.json --threshold 5

echo "==> smoke: event-engine throughput gate (engine --quick)"
# Unlike fig2/loss, these headlines are wall-clock (events/sec), so the
# threshold is generous — the gate exists to catch order-of-magnitude
# regressions (e.g. the calendar queue degenerating to O(n) pops), not
# scheduler jitter. The calendar_speedup ratio is the stable signal.
cargo run --release -q -p osiris-bench --bin engine -- --quick --bench-out target/bench/BENCH_engine.json
test -s target/bench/BENCH_engine.json
cargo run --release -q -p osiris-bench --bin regress -- \
  crates/bench/baselines/BENCH_engine.json target/bench/BENCH_engine.json --threshold 50

echo "==> sharded engine: byte-identity across shard counts (release)"
# The parallel engine's whole contract: shards ∈ {1,2,4} produce
# byte-identical semantic snapshots and goodput lines. Run in release —
# the sweep covers five scenarios × multiple seeds × three shard counts.
cargo test --release -q --test shard_equivalence

echo "==> smoke: sharded engine --threads 2"
# Exercises the multi-threaded path end to end (barriers, SPSC rings,
# merge) and its internal byte-identity assertion against 1 thread.
cargo run --release -q -p osiris-bench --bin scale -- --quick --threads 2

echo "==> smoke: scaling bench gate (scale --quick)"
# Wall-clock headlines like engine's, so the threshold is generous; the
# gate catches the sharded engine becoming order-of-magnitude slower
# (e.g. a lookahead bug collapsing every round to one event), not
# host-load jitter. Byte-identity is asserted inside the bench itself.
cargo run --release -q -p osiris-bench --bin scale -- --quick --bench-out target/bench/BENCH_scale.json
test -s target/bench/BENCH_scale.json
cargo run --release -q -p osiris-bench --bin regress -- \
  crates/bench/baselines/BENCH_scale.json target/bench/BENCH_scale.json --threshold 50

echo "==> smoke: bench harness compiles (criterion-free micro benches)"
cargo build --release -p osiris-bench --benches

echo "CI OK"
